// Concurrent-semantics tests for the multithreaded U-Split (ctest label:
// `concurrency`; also the ThreadSanitizer target of scripts/check.sh --tsan).
//
// Covers the guarantees the refactor claims:
//   * N-thread atomic appends: no lost and no torn records, POSIX and strict modes;
//   * pread concurrent with relink publication reads consistent committed data;
//   * fd-table open/close/dup stress: descriptors never cross-talk, dup shares one
//     cursor, close invalidates exactly one descriptor;
//   * disjoint-offset same-file writers and disjoint-file workers in parallel;
//   * open race on one path creates exactly one cached state;
//   * counter integrity (relinks, staging pool) under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"
#include "src/ext4/fsck.h"
#include "src/workloads/parallel.h"

namespace {

using common::kBlockSize;
using common::kMiB;
using splitfs::Mode;
using splitfs::Options;
using splitfs::SplitFs;

constexpr int kThreads = 4;

Options ConcurrentOptions(Mode mode) {
  Options o;
  o.mode = mode;
  o.num_staging_files = 4;
  o.staging_file_bytes = 8 * kMiB;
  o.oplog_bytes = 4 * kMiB;
  o.replenish_thread = true;  // Exercise the real §3.5 replenisher under TSan.
  return o;
}

class ConcurrencyTest : public ::testing::TestWithParam<Mode> {
 protected:
  ConcurrencyTest()
      : dev_(&ctx_, 2 * common::kGiB),
        kfs_(&dev_),
        fs_(std::make_unique<SplitFs>(&kfs_, ConcurrentOptions(GetParam()))) {}

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
  std::unique_ptr<SplitFs> fs_;
};

INSTANTIATE_TEST_SUITE_P(Modes, ConcurrencyTest,
                         ::testing::Values(Mode::kPosix, Mode::kStrict),
                         [](const auto& info) { return ModeName(info.param); });

// --- Atomic appends -------------------------------------------------------------------

TEST_P(ConcurrencyTest, AtomicAppendsNoLostOrTornRecords) {
  // N threads append fixed-size records through O_APPEND descriptors of one file.
  // Every record must land exactly once (no lost appends) and intact (no torn
  // appends) — Table 3's atomic-append guarantee, multithreaded.
  constexpr uint64_t kRecord = 512;
  constexpr uint64_t kPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t] {
      int fd = fs_->Open("/aappend", vfs::kRdWr | vfs::kCreate | vfs::kAppend);
      ASSERT_GE(fd, 0);
      std::vector<uint8_t> rec(kRecord);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Header: thread + sequence; body: one fill byte derived from both, so a
        // torn record is detectable at any byte.
        rec[0] = static_cast<uint8_t>(t);
        std::memcpy(rec.data() + 1, &i, sizeof(i));
        uint8_t fill = static_cast<uint8_t>(0xC0 ^ (t * 31) ^ (i * 7));
        std::memset(rec.data() + 9, fill, kRecord - 9);
        ASSERT_EQ(fs_->Write(fd, rec.data(), kRecord), static_cast<ssize_t>(kRecord));
      }
      ASSERT_EQ(fs_->Close(fd), 0);
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  int fd = fs_->Open("/aappend", vfs::kRdOnly);
  ASSERT_GE(fd, 0);
  vfs::StatBuf st;
  ASSERT_EQ(fs_->Fstat(fd, &st), 0);
  ASSERT_EQ(st.size, kThreads * kPerThread * kRecord);  // No lost appends.

  std::vector<std::vector<bool>> seen(kThreads, std::vector<bool>(kPerThread, false));
  std::vector<uint8_t> rec(kRecord);
  for (uint64_t off = 0; off < st.size; off += kRecord) {
    ASSERT_EQ(fs_->Pread(fd, rec.data(), kRecord, off), static_cast<ssize_t>(kRecord));
    int t = rec[0];
    uint64_t i = 0;
    std::memcpy(&i, rec.data() + 1, sizeof(i));
    ASSERT_LT(t, kThreads);
    ASSERT_LT(i, kPerThread);
    EXPECT_FALSE(seen[t][i]) << "record duplicated";
    seen[t][i] = true;
    uint8_t fill = static_cast<uint8_t>(0xC0 ^ (t * 31) ^ (i * 7));
    for (uint64_t b = 9; b < kRecord; ++b) {
      ASSERT_EQ(rec[b], fill) << "torn record at file offset " << off + b;
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(seen[t][i]) << "lost append t=" << t << " i=" << i;
    }
  }
  fs_->Close(fd);
}

// --- Reads racing relink publication --------------------------------------------------

TEST_P(ConcurrencyTest, PreadDuringRelinkSeesConsistentData) {
  // A writer appends block-patterned data and publishes via fsync (relink); reader
  // threads continuously pread the already-committed prefix. Every read must return
  // the pattern — never a hole, never half-published bytes.
  constexpr uint64_t kRounds = 24;
  constexpr uint64_t kBlocksPerRound = 8;
  std::atomic<uint64_t> committed{0};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> read_errors{0};

  int wfd = fs_->Open("/relinked", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(wfd, 0);

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([this, &committed, &done, &read_errors] {
      int fd = fs_->Open("/relinked", vfs::kRdOnly);
      if (fd < 0) {
        read_errors.fetch_add(1);
        return;
      }
      std::vector<uint8_t> buf(kBlockSize);
      uint64_t spins = 0;
      while (!done.load(std::memory_order_acquire) && spins < 30000) {
        ++spins;
        uint64_t limit = committed.load(std::memory_order_acquire);
        if (limit == 0) {
          continue;
        }
        uint64_t block = (spins * 2654435761u) % (limit / kBlockSize);
        if (fs_->Pread(fd, buf.data(), kBlockSize, block * kBlockSize) !=
            static_cast<ssize_t>(kBlockSize)) {
          read_errors.fetch_add(1);
          continue;
        }
        uint8_t expect = static_cast<uint8_t>(block & 0xFF);
        for (uint64_t b = 0; b < kBlockSize; b += 509) {  // Sampled; TSan-friendly.
          if (buf[b] != expect) {
            read_errors.fetch_add(1);
            break;
          }
        }
      }
      fs_->Close(fd);
    });
  }

  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t round = 0; round < kRounds; ++round) {
    for (uint64_t b = 0; b < kBlocksPerRound; ++b) {
      uint64_t blk = round * kBlocksPerRound + b;
      std::memset(block.data(), static_cast<int>(blk & 0xFF), kBlockSize);
      ASSERT_EQ(fs_->Pwrite(wfd, block.data(), kBlockSize, blk * kBlockSize),
                static_cast<ssize_t>(kBlockSize));
    }
    ASSERT_EQ(fs_->Fsync(wfd), 0);  // Publish (relink) while readers hammer preads.
    committed.store((round + 1) * kBlocksPerRound * kBlockSize,
                    std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_GT(fs_->Relinks(), 0u);
  fs_->Close(wfd);
}

// --- fd table stress ------------------------------------------------------------------

TEST_P(ConcurrencyTest, FdTableOpenCloseDupStress) {
  // Threads churn open/dup/lseek/write/read/close on their own files concurrently.
  // dup must share exactly one cursor with its origin; close must invalidate exactly
  // one descriptor; no descriptor may ever observe another file's bytes.
  constexpr int kIters = 120;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t] {
      std::string path = "/fdstress-" + std::to_string(t);
      std::vector<uint8_t> tag(64, static_cast<uint8_t>(0xA0 + t));
      std::vector<uint8_t> back(64);
      for (int i = 0; i < kIters; ++i) {
        int fd = fs_->Open(path, vfs::kRdWr | vfs::kCreate);
        ASSERT_GE(fd, 0);
        int dup_fd = fs_->Dup(fd);
        ASSERT_GE(dup_fd, 0);
        ASSERT_NE(dup_fd, fd);
        // Write through the original; the dup's shared cursor must have advanced.
        ASSERT_EQ(fs_->Lseek(fd, 0, vfs::Whence::kSet), 0);
        ASSERT_EQ(fs_->Write(fd, tag.data(), tag.size()),
                  static_cast<ssize_t>(tag.size()));
        ASSERT_EQ(fs_->Lseek(dup_fd, 0, vfs::Whence::kCur),
                  static_cast<int64_t>(tag.size()));
        // Read back through the dup from offset 0.
        ASSERT_EQ(fs_->Pread(dup_fd, back.data(), back.size(), 0),
                  static_cast<ssize_t>(back.size()));
        ASSERT_EQ(back, tag) << "descriptor cross-talk";
        // Close one: the other must stay usable; double-close must fail cleanly.
        ASSERT_EQ(fs_->Close(fd), 0);
        ASSERT_EQ(fs_->Pread(dup_fd, back.data(), back.size(), 0),
                  static_cast<ssize_t>(back.size()));
        ASSERT_EQ(fs_->Close(dup_fd), 0);
        ASSERT_EQ(fs_->Close(dup_fd), -EBADF);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
}

// --- Disjoint-offset writers on one file ----------------------------------------------

TEST_P(ConcurrencyTest, DisjointOffsetWritersOneFile) {
  // Pre-size the file, then let N threads overwrite their own disjoint regions in
  // parallel; in POSIX/sync modes these take only their byte range. Verify every
  // region afterward.
  constexpr uint64_t kRegion = 256 * 1024;
  int fd = fs_->Open("/regions", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  {
    std::vector<uint8_t> zero(kRegion, 0);
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_EQ(fs_->Pwrite(fd, zero.data(), kRegion, t * kRegion),
                static_cast<ssize_t>(kRegion));
    }
    ASSERT_EQ(fs_->Fsync(fd), 0);
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, fd, t] {
      std::vector<uint8_t> buf(4096);
      for (uint64_t off = 0; off < kRegion; off += buf.size()) {
        std::memset(buf.data(), 0x10 + t, buf.size());
        ASSERT_EQ(fs_->Pwrite(fd, buf.data(), buf.size(), t * kRegion + off),
                  static_cast<ssize_t>(buf.size()));
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  std::vector<uint8_t> back(kRegion);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(fs_->Pread(fd, back.data(), kRegion, t * kRegion),
              static_cast<ssize_t>(kRegion));
    for (uint64_t b = 0; b < kRegion; ++b) {
      ASSERT_EQ(back[b], 0x10 + t) << "offset " << t * kRegion + b;
    }
  }
  fs_->Close(fd);
}

// --- Open race ------------------------------------------------------------------------

TEST_P(ConcurrencyTest, ConcurrentOpensOfOnePathShareOneState) {
  std::vector<std::thread> workers;
  std::vector<int> fds(kThreads, -1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t, &fds] {
      fds[t] = fs_->Open("/shared-create", vfs::kRdWr | vfs::kCreate);
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_GE(fds[t], 0);
  }
  // One writer's appends are visible through every descriptor (one cached state).
  std::vector<uint8_t> data(1000, 0x77);
  ASSERT_EQ(fs_->Pwrite(fds[0], data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  for (int t = 0; t < kThreads; ++t) {
    vfs::StatBuf st;
    ASSERT_EQ(fs_->Fstat(fds[t], &st), 0);
    EXPECT_EQ(st.size, data.size());
    fs_->Close(fds[t]);
  }
}

// --- K-Split kernel metadata stress (per-inode locking + sharded allocator) -----------

class KernelMetadataStress : public ::testing::Test {
 protected:
  KernelMetadataStress() : dev_(&ctx_, 512 * common::kMiB), kfs_(&dev_) {}

  void ExpectFsckClean() {
    kfs_.CommitJournal(/*fsync_barrier=*/false);
    ext4sim::FsckReport r = ext4sim::RunFsck(&kfs_);
    for (const auto& p : r.problems) {
      ADD_FAILURE() << p;
    }
    EXPECT_TRUE(r.clean);
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
};

TEST_F(KernelMetadataStress, ParallelNamespaceChurnKeepsFsckClean) {
  // N threads churn create/write/rename/unlink plus mkdir/rmdir across a set of
  // shared directories — the workload the former big kernel lock serialized. Each
  // thread uses its own leaf names, so every operation must succeed; afterwards
  // fsck verifies nlink, reachability, and allocator accounting.
  constexpr int kDirs = 4;
  for (int d = 0; d < kDirs; ++d) {
    ASSERT_EQ(kfs_.Mkdir("/d" + std::to_string(d)), 0);
  }
  constexpr int kIters = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t] {
      std::vector<uint8_t> block(kBlockSize, static_cast<uint8_t>(0xA0 + t));
      for (int i = 0; i < kIters; ++i) {
        std::string d1 = "/d" + std::to_string((t + i) % kDirs);
        std::string d2 = "/d" + std::to_string((t + i + 1) % kDirs);
        std::string name = "/f" + std::to_string(t);
        int fd = kfs_.Open(d1 + name, vfs::kRdWr | vfs::kCreate);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(kfs_.Pwrite(fd, block.data(), block.size(), 0),
                  static_cast<ssize_t>(block.size()));
        ASSERT_EQ(kfs_.Close(fd), 0);
        ASSERT_EQ(kfs_.Rename(d1 + name, d2 + name), 0);
        // Subdirectory churn in the shared directories (nlink accounting under
        // concurrency), including a cross-directory directory move.
        std::string sub = d2 + "/sub" + std::to_string(t);
        ASSERT_EQ(kfs_.Mkdir(sub), 0);
        std::string sub2 = d1 + "/sub" + std::to_string(t);
        ASSERT_EQ(kfs_.Rename(sub, sub2), 0);
        ASSERT_EQ(kfs_.Rmdir(sub2), 0);
        if (i % 3 == 0) {
          ASSERT_EQ(kfs_.Unlink(d2 + name), 0);
        } else {
          ASSERT_EQ(kfs_.Rename(d2 + name, d1 + name), 0);
          ASSERT_EQ(kfs_.Unlink(d1 + name), 0);
        }
        if (i % 8 == 0) {
          kfs_.CommitJournal(/*fsync_barrier=*/false);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  ExpectFsckClean();
}

TEST_F(KernelMetadataStress, ConcurrentPreadsAndOverwritesOnOneInode) {
  // Per-inode reader/writer lock: readers share the inode and update the atomic
  // sequential-read hint concurrently; a writer invalidating it must not race them.
  // Block contents are deterministic per block index, so readers always verify.
  constexpr uint64_t kBlocks = 16;
  int wfd = kfs_.Open("/hot", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(wfd, 0);
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t b = 0; b < kBlocks; ++b) {
    std::memset(block.data(), static_cast<int>(b), kBlockSize);
    ASSERT_EQ(kfs_.Pwrite(wfd, block.data(), kBlockSize, b * kBlockSize),
              static_cast<ssize_t>(kBlockSize));
  }
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kThreads - 1; ++r) {
    readers.emplace_back([this, r, &done] {
      int fd = kfs_.Open("/hot", vfs::kRdOnly);
      ASSERT_GE(fd, 0);
      std::vector<uint8_t> buf(kBlockSize);
      uint64_t spins = 0;
      while (!done.load(std::memory_order_acquire) && spins < 20000) {
        uint64_t b = (++spins * (r + 3)) % kBlocks;
        ASSERT_EQ(kfs_.Pread(fd, buf.data(), kBlockSize, b * kBlockSize),
                  static_cast<ssize_t>(kBlockSize));
        ASSERT_EQ(buf[0], static_cast<uint8_t>(b));
        ASSERT_EQ(buf[kBlockSize - 1], static_cast<uint8_t>(b));
      }
      kfs_.Close(fd);
    });
  }
  for (int i = 0; i < 400; ++i) {
    uint64_t b = (i * 7) % kBlocks;
    std::memset(block.data(), static_cast<int>(b), kBlockSize);  // Same bytes back.
    ASSERT_EQ(kfs_.Pwrite(wfd, block.data(), kBlockSize, b * kBlockSize),
              static_cast<ssize_t>(kBlockSize));
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) {
    r.join();
  }
  kfs_.Close(wfd);
  ExpectFsckClean();
}

TEST_F(KernelMetadataStress, RenameOverOpenDestinationChurn) {
  // The satellite-bugfix scenario, multithreaded: renames displace open files while
  // other descriptors reopen victims by ino and commits race the deferred frees.
  // Nothing may double-free (fsck's allocator accounting catches it).
  ASSERT_EQ(kfs_.Mkdir("/r"), 0);
  constexpr int kIters = 40;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t] {
      std::vector<uint8_t> block(kBlockSize, static_cast<uint8_t>(t));
      std::string a = "/r/a" + std::to_string(t);
      std::string b = "/r/b" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        int afd = kfs_.Open(a, vfs::kRdWr | vfs::kCreate);
        ASSERT_GE(afd, 0);
        ASSERT_EQ(kfs_.Pwrite(afd, block.data(), block.size(), 0),
                  static_cast<ssize_t>(block.size()));
        ASSERT_EQ(kfs_.Close(afd), 0);
        int bfd = kfs_.Open(b, vfs::kRdWr | vfs::kCreate);
        ASSERT_GE(bfd, 0);
        ASSERT_EQ(kfs_.Pwrite(bfd, block.data(), block.size(), 0),
                  static_cast<ssize_t>(block.size()));
        vfs::Ino victim = kfs_.InoOf(bfd);
        ASSERT_EQ(kfs_.Rename(a, b), 0);  // Displaces the open destination.
        // The orphan stays readable through the surviving descriptor and through
        // an OpenByIno reopen, however commits interleave.
        std::vector<uint8_t> back(kBlockSize);
        ASSERT_EQ(kfs_.Pread(bfd, back.data(), back.size(), 0),
                  static_cast<ssize_t>(back.size()));
        int vfd = kfs_.OpenByIno(victim, vfs::kRdWr);
        if (vfd >= 0) {
          ASSERT_EQ(kfs_.Close(vfd), 0);
        }
        ASSERT_EQ(kfs_.Close(bfd), 0);
        kfs_.CommitJournal(/*fsync_barrier=*/false);
        ASSERT_EQ(kfs_.Unlink(b), 0);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  ExpectFsckClean();
}

// --- Driver integration + counters ----------------------------------------------------

TEST_P(ConcurrencyTest, ParallelAppendDriverRunsCleanAndCountsAdd) {
  wl::ParallelResult r = wl::RunParallelAppend(fs_.get(), &ctx_.clock, kThreads,
                                               "/drv", /*bytes_per_thread=*/2 * kMiB,
                                               /*op_bytes=*/4096, /*fsync_every=*/64);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.ops, static_cast<uint64_t>(kThreads) * (2 * kMiB / 4096));
  EXPECT_GT(r.elapsed_ns, 0u);
  EXPECT_GT(fs_->Relinks(), 0u);  // Publishes happened, counted without tearing.
  if (GetParam() == Mode::kStrict) {
    EXPECT_GT(fs_->OpLogEntries(), 0u);
  }
}

}  // namespace
