// Concurrent-semantics tests for the multithreaded U-Split (ctest label:
// `concurrency`; also the ThreadSanitizer target of scripts/check.sh --tsan).
//
// Covers the guarantees the refactor claims:
//   * N-thread atomic appends: no lost and no torn records, POSIX and strict modes;
//   * pread concurrent with relink publication reads consistent committed data;
//   * lock-free Translate during relink/unlink/truncate churn (epoch snapshots);
//   * async publisher ordering: readers see the staged or the published snapshot,
//     never a torn window, and the completion fence drains the queue;
//   * fd-table open/close/dup stress: descriptors never cross-talk, dup shares one
//     cursor, close invalidates exactly one descriptor;
//   * disjoint-offset same-file writers and disjoint-file workers in parallel;
//   * open race on one path (and rename racing a first open of the destination)
//     keeps exactly one cached state;
//   * counter integrity (relinks, staging pool) under concurrency.
//
// Every suite runs twice per mode: synchronous publication and the async relink
// publisher (Options::async_relink + a real publisher thread), so the TSan pass of
// scripts/check.sh exercises the intent-log/publish/fence protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"
#include "src/ext4/fsck.h"
#include "src/workloads/parallel.h"

namespace {

using common::kBlockSize;
using common::kMiB;
using splitfs::Mode;
using splitfs::Options;
using splitfs::SplitFs;

constexpr int kThreads = 4;

Options ConcurrentOptions(Mode mode, bool async_publish) {
  Options o;
  o.mode = mode;
  o.num_staging_files = 4;
  o.staging_file_bytes = 8 * kMiB;
  o.oplog_bytes = 4 * kMiB;
  o.replenish_thread = true;  // Exercise the real §3.5 replenisher under TSan.
  if (async_publish) {
    o.async_relink = true;
    o.publisher_thread = true;  // The real background publisher, under TSan too.
  }
  return o;
}

class ConcurrencyTest : public ::testing::TestWithParam<std::tuple<Mode, bool>> {
 protected:
  ConcurrencyTest()
      : dev_(&ctx_, 2 * common::kGiB),
        kfs_(&dev_),
        fs_(std::make_unique<SplitFs>(
            &kfs_, ConcurrentOptions(std::get<0>(GetParam()), std::get<1>(GetParam())))) {}

  Mode mode() const { return std::get<0>(GetParam()); }
  bool async() const { return std::get<1>(GetParam()); }
  // Publish completion fence: settles counters (relinks, staged bytes) before
  // assertions; no-op in the synchronous configurations.
  void Settle() { fs_->WaitForPublishes(); }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
  std::unique_ptr<SplitFs> fs_;
};

INSTANTIATE_TEST_SUITE_P(
    Modes, ConcurrencyTest,
    ::testing::Combine(::testing::Values(Mode::kPosix, Mode::kStrict),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(ModeName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_async" : "_inline");
    });

// --- Atomic appends -------------------------------------------------------------------

TEST_P(ConcurrencyTest, AtomicAppendsNoLostOrTornRecords) {
  // N threads append fixed-size records through O_APPEND descriptors of one file.
  // Every record must land exactly once (no lost appends) and intact (no torn
  // appends) — Table 3's atomic-append guarantee, multithreaded.
  constexpr uint64_t kRecord = 512;
  constexpr uint64_t kPerThread = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t] {
      int fd = fs_->Open("/aappend", vfs::kRdWr | vfs::kCreate | vfs::kAppend);
      ASSERT_GE(fd, 0);
      std::vector<uint8_t> rec(kRecord);
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Header: thread + sequence; body: one fill byte derived from both, so a
        // torn record is detectable at any byte.
        rec[0] = static_cast<uint8_t>(t);
        std::memcpy(rec.data() + 1, &i, sizeof(i));
        uint8_t fill = static_cast<uint8_t>(0xC0 ^ (t * 31) ^ (i * 7));
        std::memset(rec.data() + 9, fill, kRecord - 9);
        ASSERT_EQ(fs_->Write(fd, rec.data(), kRecord), static_cast<ssize_t>(kRecord));
      }
      ASSERT_EQ(fs_->Close(fd), 0);
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  int fd = fs_->Open("/aappend", vfs::kRdOnly);
  ASSERT_GE(fd, 0);
  vfs::StatBuf st;
  ASSERT_EQ(fs_->Fstat(fd, &st), 0);
  ASSERT_EQ(st.size, kThreads * kPerThread * kRecord);  // No lost appends.

  std::vector<std::vector<bool>> seen(kThreads, std::vector<bool>(kPerThread, false));
  std::vector<uint8_t> rec(kRecord);
  for (uint64_t off = 0; off < st.size; off += kRecord) {
    ASSERT_EQ(fs_->Pread(fd, rec.data(), kRecord, off), static_cast<ssize_t>(kRecord));
    int t = rec[0];
    uint64_t i = 0;
    std::memcpy(&i, rec.data() + 1, sizeof(i));
    ASSERT_LT(t, kThreads);
    ASSERT_LT(i, kPerThread);
    EXPECT_FALSE(seen[t][i]) << "record duplicated";
    seen[t][i] = true;
    uint8_t fill = static_cast<uint8_t>(0xC0 ^ (t * 31) ^ (i * 7));
    for (uint64_t b = 9; b < kRecord; ++b) {
      ASSERT_EQ(rec[b], fill) << "torn record at file offset " << off + b;
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(seen[t][i]) << "lost append t=" << t << " i=" << i;
    }
  }
  fs_->Close(fd);
}

// --- Reads racing relink publication --------------------------------------------------

TEST_P(ConcurrencyTest, PreadDuringRelinkSeesConsistentData) {
  // A writer appends block-patterned data and publishes via fsync (relink); reader
  // threads continuously pread the already-committed prefix. Every read must return
  // the pattern — never a hole, never half-published bytes.
  constexpr uint64_t kRounds = 24;
  constexpr uint64_t kBlocksPerRound = 8;
  std::atomic<uint64_t> committed{0};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> read_errors{0};

  int wfd = fs_->Open("/relinked", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(wfd, 0);

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([this, &committed, &done, &read_errors] {
      int fd = fs_->Open("/relinked", vfs::kRdOnly);
      if (fd < 0) {
        read_errors.fetch_add(1);
        return;
      }
      std::vector<uint8_t> buf(kBlockSize);
      uint64_t spins = 0;
      while (!done.load(std::memory_order_acquire) && spins < 30000) {
        ++spins;
        uint64_t limit = committed.load(std::memory_order_acquire);
        if (limit == 0) {
          continue;
        }
        uint64_t block = (spins * 2654435761u) % (limit / kBlockSize);
        if (fs_->Pread(fd, buf.data(), kBlockSize, block * kBlockSize) !=
            static_cast<ssize_t>(kBlockSize)) {
          read_errors.fetch_add(1);
          continue;
        }
        uint8_t expect = static_cast<uint8_t>(block & 0xFF);
        for (uint64_t b = 0; b < kBlockSize; b += 509) {  // Sampled; TSan-friendly.
          if (buf[b] != expect) {
            read_errors.fetch_add(1);
            break;
          }
        }
      }
      fs_->Close(fd);
    });
  }

  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t round = 0; round < kRounds; ++round) {
    for (uint64_t b = 0; b < kBlocksPerRound; ++b) {
      uint64_t blk = round * kBlocksPerRound + b;
      std::memset(block.data(), static_cast<int>(blk & 0xFF), kBlockSize);
      ASSERT_EQ(fs_->Pwrite(wfd, block.data(), kBlockSize, blk * kBlockSize),
                static_cast<ssize_t>(kBlockSize));
    }
    ASSERT_EQ(fs_->Fsync(wfd), 0);  // Publish (relink) while readers hammer preads.
    committed.store((round + 1) * kBlocksPerRound * kBlockSize,
                    std::memory_order_release);
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(read_errors.load(), 0u);
  Settle();  // Async: the queued publishes must have really relinked.
  EXPECT_GT(fs_->Relinks(), 0u);
  fs_->Close(wfd);
}

// --- Lock-free Translate under snapshot churn -----------------------------------------

TEST_P(ConcurrencyTest, TranslateDuringRelinkUnlinkTruncateChurn) {
  // Reader threads hammer preads of stable files — every access is a lock-free
  // MmapCache::Translate — while a churn thread drives the snapshot-swapping paths
  // on other files sharing the same cache: relink publication (fsync), shrinking
  // truncate (range invalidation), and unlink/recreate (file invalidation, epoch
  // retirement of whole snapshots). Readers must always see their files' bytes;
  // TSan validates the epoch protocol.
  constexpr int kStable = 2;
  constexpr uint64_t kFileBytes = 256 * 1024;
  auto byte_at = [](int f, uint64_t off) {
    return static_cast<uint8_t>(0x21 ^ (f * 53) ^ (off >> 9));
  };
  for (int f = 0; f < kStable; ++f) {
    int fd = fs_->Open("/stable-" + std::to_string(f), vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(fd, 0);
    std::vector<uint8_t> buf(4096);
    for (uint64_t off = 0; off < kFileBytes; off += buf.size()) {
      for (uint64_t i = 0; i < buf.size(); ++i) {
        buf[i] = byte_at(f, off + i);
      }
      ASSERT_EQ(fs_->Pwrite(fd, buf.data(), buf.size(), off),
                static_cast<ssize_t>(buf.size()));
    }
    ASSERT_EQ(fs_->Fsync(fd), 0);
    ASSERT_EQ(fs_->Close(fd), 0);
  }
  std::atomic<bool> done{false};
  std::atomic<uint64_t> read_errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kThreads - 1; ++r) {
    readers.emplace_back([this, r, &done, &read_errors, &byte_at] {
      int f = r % kStable;
      int fd = fs_->Open("/stable-" + std::to_string(f), vfs::kRdOnly);
      if (fd < 0) {
        read_errors.fetch_add(1);
        return;
      }
      std::vector<uint8_t> buf(4096);
      uint64_t spins = 0;
      while (!done.load(std::memory_order_acquire) && spins < 20000) {
        ++spins;
        uint64_t off = (spins * 2654435761u * (r + 1)) % (kFileBytes / 4096) * 4096;
        if (fs_->Pread(fd, buf.data(), buf.size(), off) !=
            static_cast<ssize_t>(buf.size())) {
          read_errors.fetch_add(1);
          continue;
        }
        if (buf[0] != byte_at(f, off) || buf[4095] != byte_at(f, off + 4095)) {
          read_errors.fetch_add(1);
        }
      }
      fs_->Close(fd);
    });
  }
  // Churn: every iteration swaps translation snapshots under the readers' feet.
  std::vector<uint8_t> block(2 * kBlockSize, 0x7E);
  for (int i = 0; i < 60; ++i) {
    std::string path = "/churn-" + std::to_string(i % 3);
    int fd = fs_->Open(path, vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(fs_->Pwrite(fd, block.data(), block.size(), 0),
              static_cast<ssize_t>(block.size()));
    ASSERT_EQ(fs_->Fsync(fd), 0);  // Relink: snapshot insert + range invalidate.
    std::vector<uint8_t> back(kBlockSize);
    ASSERT_EQ(fs_->Pread(fd, back.data(), back.size(), 0),
              static_cast<ssize_t>(back.size()));  // Map the region (Translate).
    ASSERT_EQ(fs_->Ftruncate(fd, kBlockSize), 0);  // Range invalidation.
    ASSERT_EQ(fs_->Close(fd), 0);
    if (i % 3 == 2) {
      ASSERT_EQ(fs_->Unlink(path), 0);  // Whole-file invalidation + retirement.
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(read_errors.load(), 0u);
}

// --- Async publisher ordering ---------------------------------------------------------

TEST_P(ConcurrencyTest, AsyncPublishDrainsAndMatchesWrittenImage) {
  // Writers append records and fsync while the publisher relinks behind them;
  // concurrent readers re-read the acknowledged prefix. After the completion fence
  // the full image must match what was written (publishes lost nothing, staged and
  // published windows stitched seamlessly), with no staged bytes left behind.
  constexpr uint64_t kRecord = kBlockSize;
  constexpr uint64_t kRecords = 96;
  int wfd = fs_->Open("/apub", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(wfd, 0);
  std::atomic<uint64_t> acked{0};
  std::atomic<bool> done{false};
  std::atomic<uint64_t> read_errors{0};
  std::thread reader([this, &acked, &done, &read_errors] {
    int fd = fs_->Open("/apub", vfs::kRdOnly);
    if (fd < 0) {
      read_errors.fetch_add(1);
      return;
    }
    std::vector<uint8_t> buf(kRecord);
    uint64_t spins = 0;
    while (!done.load(std::memory_order_acquire) && spins < 30000) {
      ++spins;
      uint64_t limit = acked.load(std::memory_order_acquire);
      if (limit == 0) {
        continue;
      }
      uint64_t rec = (spins * 48271) % limit;
      if (fs_->Pread(fd, buf.data(), kRecord, rec * kRecord) !=
          static_cast<ssize_t>(kRecord)) {
        read_errors.fetch_add(1);
        continue;
      }
      uint8_t expect = static_cast<uint8_t>(0xB0 ^ rec);
      // A record is written whole before the acknowledging fsync: whether it is
      // served staged or published, every byte matches — a torn window would mix
      // pre-publish zeroes with post-publish bytes.
      for (uint64_t b = 0; b < kRecord; b += 397) {
        if (buf[b] != expect) {
          read_errors.fetch_add(1);
          break;
        }
      }
    }
    fs_->Close(fd);
  });
  std::vector<uint8_t> rec(kRecord);
  for (uint64_t r = 0; r < kRecords; ++r) {
    std::memset(rec.data(), 0xB0 ^ static_cast<int>(r), kRecord);
    ASSERT_EQ(fs_->Pwrite(wfd, rec.data(), kRecord, r * kRecord),
              static_cast<ssize_t>(kRecord));
    if (r % 8 == 7) {
      ASSERT_EQ(fs_->Fsync(wfd), 0);
      acked.store(r + 1, std::memory_order_release);
    }
  }
  ASSERT_EQ(fs_->Fsync(wfd), 0);
  acked.store(kRecords, std::memory_order_release);
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  Settle();  // Completion fence: queue drained, publishes committed.
  EXPECT_EQ(fs_->StagedBytes(), 0u);
  EXPECT_EQ(fs_->PublishErrors(), 0u);
  EXPECT_GT(fs_->Relinks(), 0u);
  if (async()) {
    EXPECT_GT(fs_->AsyncPublishes(), 0u);
  }
  std::vector<uint8_t> back(kRecord);
  for (uint64_t r = 0; r < kRecords; ++r) {
    ASSERT_EQ(fs_->Pread(wfd, back.data(), kRecord, r * kRecord),
              static_cast<ssize_t>(kRecord));
    uint8_t expect = static_cast<uint8_t>(0xB0 ^ r);
    for (uint64_t b = 0; b < kRecord; ++b) {
      ASSERT_EQ(back[b], expect) << "record " << r << " byte " << b;
    }
  }
  fs_->Close(wfd);
}

// --- Log-full checkpoint with async relink --------------------------------------------

TEST(AsyncRelinkCheckpoint, LogFullCheckpointDoesNotDeadlockAndKeepsData) {
  // A tiny op log forces the log-full checkpoint repeatedly while async relink is
  // appending intent and done records. Regression: a publish's kRelinkDone append
  // against an already-full log used to re-enter CheckpointForFull from inside the
  // checkpoint's own sweep and deadlock on the checkpoint mutex.
  for (Mode mode : {Mode::kPosix, Mode::kStrict}) {
    sim::Context ctx;
    pmem::Device dev(&ctx, 2 * common::kGiB);
    ext4sim::Ext4Dax kfs(&dev);
    Options o = ConcurrentOptions(mode, /*async_publish=*/true);
    o.replenish_thread = false;
    o.publisher_thread = false;   // Inline deferred publish: deterministic.
    o.oplog_bytes = 64 * 1024;    // 1024 entries: checkpoints early and often.
    SplitFs fs(&kfs, o);
    // A second file that stays dirty (staged, never fsync'd): the checkpoint's
    // try-lock sweep — which runs under the checkpoint mutex, where a recursive
    // re-entry deadlocks — must publish it, exercising the sweep-side done-record
    // suppression.
    std::vector<uint8_t> rec(512);
    int afd = fs.Open("/ckpt-dirty", vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(afd, 0);
    int fd = fs.Open("/ckpt", vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(fd, 0);
    uint64_t off = 0;
    uint64_t dirty_off = 0;
    for (int i = 0; i < 2000; ++i) {
      std::memset(rec.data(), 0x30 + (i % 40), rec.size());
      ASSERT_EQ(fs.Pwrite(fd, rec.data(), rec.size(), off),
                static_cast<ssize_t>(rec.size()));
      off += rec.size();
      if (i % 16 == 0) {
        // Re-dirty the sweep target (the previous checkpoint published it).
        std::memset(rec.data(), 0x7A, rec.size());
        ASSERT_EQ(fs.Pwrite(afd, rec.data(), rec.size(), dirty_off),
                  static_cast<ssize_t>(rec.size()));
        dirty_off += rec.size();
      }
      if (i % 4 == 3) {
        ASSERT_EQ(fs.Fsync(fd), 0);
      }
    }
    ASSERT_EQ(fs.Fsync(fd), 0);
    EXPECT_GT(fs.Checkpoints(), 0u) << ModeName(mode);
    for (uint64_t r = 0; r < 2000; ++r) {
      std::vector<uint8_t> back(512);
      ASSERT_EQ(fs.Pread(fd, back.data(), back.size(), r * 512),
                static_cast<ssize_t>(back.size()));
      ASSERT_EQ(back[0], 0x30 + (r % 40)) << "record " << r;
      ASSERT_EQ(back[511], 0x30 + (r % 40)) << "record " << r;
    }
    ASSERT_EQ(fs.Close(fd), 0);
    ASSERT_EQ(fs.Close(afd), 0);
  }
}

// --- Rename vs. first open of the destination (PR 3 leftover race) --------------------

TEST_P(ConcurrencyTest, RenameVsFirstOpenKeepsStagedState) {
  // A file with staged-but-unpublished appends is renamed while another thread
  // performs the first open of the destination path. Before the fix, an open in
  // the window between the kernel rename and the path-cache update resolved the
  // *moved* inode through the kernel and installed a second FileState that
  // overwrote the cached one — stranding its staged set and dirty-file count: the
  // original descriptor then reported the kernel size instead of the staged size.
  // Rename now holds both path shards across the kernel call, so the opener
  // serializes behind it and reopens the moved state from the cache.
  //
  // The interleaving is forced through the test hook — single-core CI cannot land
  // preemption inside a sub-microsecond window: the hook parks the rename in the
  // historical window, starts the opener, and gives it a generous grace period.
  // On the fixed code the opener blocks on the destination's path shard until the
  // rename finishes; on the unfixed code it completed inside the window and the
  // staged state was lost.
  constexpr uint64_t kBytes = 4096;
  std::vector<uint8_t> payload(kBytes, 0x5C);
  for (int i = 0; i < 3; ++i) {
    std::string src = "/rnrace-src-" + std::to_string(i);
    std::string dst = "/rnrace-dst-" + std::to_string(i);
    int sfd = fs_->Open(src, vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(sfd, 0);
    ASSERT_EQ(fs_->Pwrite(sfd, payload.data(), kBytes, 0),
              static_cast<ssize_t>(kBytes));  // Staged append, not yet published.
    std::thread opener;
    std::atomic<bool> open_done{false};
    fs_->set_rename_race_hook_for_test([this, &dst, &opener, &open_done] {
      opener = std::thread([this, &dst, &open_done] {
        int fd = fs_->Open(dst, vfs::kRdWr | vfs::kCreate);
        if (fd >= 0) {
          fs_->Close(fd);
        }
        open_done.store(true, std::memory_order_release);
      });
      for (int spins = 0; spins < 100 && !open_done.load(std::memory_order_acquire);
           ++spins) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    ASSERT_EQ(fs_->Rename(src, dst), 0);
    fs_->set_rename_race_hook_for_test(nullptr);
    opener.join();
    EXPECT_TRUE(open_done.load());
    // The moved state must still carry the staged append.
    vfs::StatBuf st;
    ASSERT_EQ(fs_->Fstat(sfd, &st), 0);
    ASSERT_EQ(st.size, kBytes) << "staged state stranded by rename/open race, iter "
                               << i;
    ASSERT_EQ(fs_->Fsync(sfd), 0);
    std::vector<uint8_t> back(kBytes);
    ASSERT_EQ(fs_->Pread(sfd, back.data(), kBytes, 0), static_cast<ssize_t>(kBytes));
    EXPECT_EQ(back, payload);
    ASSERT_EQ(fs_->Close(sfd), 0);
    ASSERT_EQ(fs_->Unlink(dst), 0);
  }
}

// --- fd table stress ------------------------------------------------------------------

TEST_P(ConcurrencyTest, FdTableOpenCloseDupStress) {
  // Threads churn open/dup/lseek/write/read/close on their own files concurrently.
  // dup must share exactly one cursor with its origin; close must invalidate exactly
  // one descriptor; no descriptor may ever observe another file's bytes.
  constexpr int kIters = 120;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t] {
      std::string path = "/fdstress-" + std::to_string(t);
      std::vector<uint8_t> tag(64, static_cast<uint8_t>(0xA0 + t));
      std::vector<uint8_t> back(64);
      for (int i = 0; i < kIters; ++i) {
        int fd = fs_->Open(path, vfs::kRdWr | vfs::kCreate);
        ASSERT_GE(fd, 0);
        int dup_fd = fs_->Dup(fd);
        ASSERT_GE(dup_fd, 0);
        ASSERT_NE(dup_fd, fd);
        // Write through the original; the dup's shared cursor must have advanced.
        ASSERT_EQ(fs_->Lseek(fd, 0, vfs::Whence::kSet), 0);
        ASSERT_EQ(fs_->Write(fd, tag.data(), tag.size()),
                  static_cast<ssize_t>(tag.size()));
        ASSERT_EQ(fs_->Lseek(dup_fd, 0, vfs::Whence::kCur),
                  static_cast<int64_t>(tag.size()));
        // Read back through the dup from offset 0.
        ASSERT_EQ(fs_->Pread(dup_fd, back.data(), back.size(), 0),
                  static_cast<ssize_t>(back.size()));
        ASSERT_EQ(back, tag) << "descriptor cross-talk";
        // Close one: the other must stay usable; double-close must fail cleanly.
        ASSERT_EQ(fs_->Close(fd), 0);
        ASSERT_EQ(fs_->Pread(dup_fd, back.data(), back.size(), 0),
                  static_cast<ssize_t>(back.size()));
        ASSERT_EQ(fs_->Close(dup_fd), 0);
        ASSERT_EQ(fs_->Close(dup_fd), -EBADF);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
}

// --- Disjoint-offset writers on one file ----------------------------------------------

TEST_P(ConcurrencyTest, DisjointOffsetWritersOneFile) {
  // Pre-size the file, then let N threads overwrite their own disjoint regions in
  // parallel; in POSIX/sync modes these take only their byte range. Verify every
  // region afterward.
  constexpr uint64_t kRegion = 256 * 1024;
  int fd = fs_->Open("/regions", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  {
    std::vector<uint8_t> zero(kRegion, 0);
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_EQ(fs_->Pwrite(fd, zero.data(), kRegion, t * kRegion),
                static_cast<ssize_t>(kRegion));
    }
    ASSERT_EQ(fs_->Fsync(fd), 0);
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, fd, t] {
      std::vector<uint8_t> buf(4096);
      for (uint64_t off = 0; off < kRegion; off += buf.size()) {
        std::memset(buf.data(), 0x10 + t, buf.size());
        ASSERT_EQ(fs_->Pwrite(fd, buf.data(), buf.size(), t * kRegion + off),
                  static_cast<ssize_t>(buf.size()));
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  std::vector<uint8_t> back(kRegion);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(fs_->Pread(fd, back.data(), kRegion, t * kRegion),
              static_cast<ssize_t>(kRegion));
    for (uint64_t b = 0; b < kRegion; ++b) {
      ASSERT_EQ(back[b], 0x10 + t) << "offset " << t * kRegion + b;
    }
  }
  fs_->Close(fd);
}

// --- Open race ------------------------------------------------------------------------

TEST_P(ConcurrencyTest, ConcurrentOpensOfOnePathShareOneState) {
  std::vector<std::thread> workers;
  std::vector<int> fds(kThreads, -1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t, &fds] {
      fds[t] = fs_->Open("/shared-create", vfs::kRdWr | vfs::kCreate);
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_GE(fds[t], 0);
  }
  // One writer's appends are visible through every descriptor (one cached state).
  std::vector<uint8_t> data(1000, 0x77);
  ASSERT_EQ(fs_->Pwrite(fds[0], data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  for (int t = 0; t < kThreads; ++t) {
    vfs::StatBuf st;
    ASSERT_EQ(fs_->Fstat(fds[t], &st), 0);
    EXPECT_EQ(st.size, data.size());
    fs_->Close(fds[t]);
  }
}

// --- K-Split kernel metadata stress (per-inode locking + sharded allocator) -----------

class KernelMetadataStress : public ::testing::Test {
 protected:
  KernelMetadataStress() : dev_(&ctx_, 512 * common::kMiB), kfs_(&dev_) {}

  void ExpectFsckClean() {
    kfs_.CommitJournal(/*fsync_barrier=*/false);
    ext4sim::FsckReport r = ext4sim::RunFsck(&kfs_);
    for (const auto& p : r.problems) {
      ADD_FAILURE() << p;
    }
    EXPECT_TRUE(r.clean);
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
};

TEST_F(KernelMetadataStress, ParallelNamespaceChurnKeepsFsckClean) {
  // N threads churn create/write/rename/unlink plus mkdir/rmdir across a set of
  // shared directories — the workload the former big kernel lock serialized. Each
  // thread uses its own leaf names, so every operation must succeed; afterwards
  // fsck verifies nlink, reachability, and allocator accounting.
  constexpr int kDirs = 4;
  for (int d = 0; d < kDirs; ++d) {
    ASSERT_EQ(kfs_.Mkdir("/d" + std::to_string(d)), 0);
  }
  constexpr int kIters = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t] {
      std::vector<uint8_t> block(kBlockSize, static_cast<uint8_t>(0xA0 + t));
      for (int i = 0; i < kIters; ++i) {
        std::string d1 = "/d" + std::to_string((t + i) % kDirs);
        std::string d2 = "/d" + std::to_string((t + i + 1) % kDirs);
        std::string name = "/f" + std::to_string(t);
        int fd = kfs_.Open(d1 + name, vfs::kRdWr | vfs::kCreate);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(kfs_.Pwrite(fd, block.data(), block.size(), 0),
                  static_cast<ssize_t>(block.size()));
        ASSERT_EQ(kfs_.Close(fd), 0);
        ASSERT_EQ(kfs_.Rename(d1 + name, d2 + name), 0);
        // Subdirectory churn in the shared directories (nlink accounting under
        // concurrency), including a cross-directory directory move.
        std::string sub = d2 + "/sub" + std::to_string(t);
        ASSERT_EQ(kfs_.Mkdir(sub), 0);
        std::string sub2 = d1 + "/sub" + std::to_string(t);
        ASSERT_EQ(kfs_.Rename(sub, sub2), 0);
        ASSERT_EQ(kfs_.Rmdir(sub2), 0);
        if (i % 3 == 0) {
          ASSERT_EQ(kfs_.Unlink(d2 + name), 0);
        } else {
          ASSERT_EQ(kfs_.Rename(d2 + name, d1 + name), 0);
          ASSERT_EQ(kfs_.Unlink(d1 + name), 0);
        }
        if (i % 8 == 0) {
          kfs_.CommitJournal(/*fsync_barrier=*/false);
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  ExpectFsckClean();
}

TEST_F(KernelMetadataStress, ConcurrentPreadsAndOverwritesOnOneInode) {
  // Per-inode reader/writer lock: readers share the inode and update the atomic
  // sequential-read hint concurrently; a writer invalidating it must not race them.
  // Block contents are deterministic per block index, so readers always verify.
  constexpr uint64_t kBlocks = 16;
  int wfd = kfs_.Open("/hot", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(wfd, 0);
  std::vector<uint8_t> block(kBlockSize);
  for (uint64_t b = 0; b < kBlocks; ++b) {
    std::memset(block.data(), static_cast<int>(b), kBlockSize);
    ASSERT_EQ(kfs_.Pwrite(wfd, block.data(), kBlockSize, b * kBlockSize),
              static_cast<ssize_t>(kBlockSize));
  }
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kThreads - 1; ++r) {
    readers.emplace_back([this, r, &done] {
      int fd = kfs_.Open("/hot", vfs::kRdOnly);
      ASSERT_GE(fd, 0);
      std::vector<uint8_t> buf(kBlockSize);
      uint64_t spins = 0;
      while (!done.load(std::memory_order_acquire) && spins < 20000) {
        uint64_t b = (++spins * (r + 3)) % kBlocks;
        ASSERT_EQ(kfs_.Pread(fd, buf.data(), kBlockSize, b * kBlockSize),
                  static_cast<ssize_t>(kBlockSize));
        ASSERT_EQ(buf[0], static_cast<uint8_t>(b));
        ASSERT_EQ(buf[kBlockSize - 1], static_cast<uint8_t>(b));
      }
      kfs_.Close(fd);
    });
  }
  for (int i = 0; i < 400; ++i) {
    uint64_t b = (i * 7) % kBlocks;
    std::memset(block.data(), static_cast<int>(b), kBlockSize);  // Same bytes back.
    ASSERT_EQ(kfs_.Pwrite(wfd, block.data(), kBlockSize, b * kBlockSize),
              static_cast<ssize_t>(kBlockSize));
  }
  done.store(true, std::memory_order_release);
  for (auto& r : readers) {
    r.join();
  }
  kfs_.Close(wfd);
  ExpectFsckClean();
}

TEST_F(KernelMetadataStress, RenameOverOpenDestinationChurn) {
  // The satellite-bugfix scenario, multithreaded: renames displace open files while
  // other descriptors reopen victims by ino and commits race the deferred frees.
  // Nothing may double-free (fsck's allocator accounting catches it).
  ASSERT_EQ(kfs_.Mkdir("/r"), 0);
  constexpr int kIters = 40;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, t] {
      std::vector<uint8_t> block(kBlockSize, static_cast<uint8_t>(t));
      std::string a = "/r/a" + std::to_string(t);
      std::string b = "/r/b" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        int afd = kfs_.Open(a, vfs::kRdWr | vfs::kCreate);
        ASSERT_GE(afd, 0);
        ASSERT_EQ(kfs_.Pwrite(afd, block.data(), block.size(), 0),
                  static_cast<ssize_t>(block.size()));
        ASSERT_EQ(kfs_.Close(afd), 0);
        int bfd = kfs_.Open(b, vfs::kRdWr | vfs::kCreate);
        ASSERT_GE(bfd, 0);
        ASSERT_EQ(kfs_.Pwrite(bfd, block.data(), block.size(), 0),
                  static_cast<ssize_t>(block.size()));
        vfs::Ino victim = kfs_.InoOf(bfd);
        ASSERT_EQ(kfs_.Rename(a, b), 0);  // Displaces the open destination.
        // The orphan stays readable through the surviving descriptor and through
        // an OpenByIno reopen, however commits interleave.
        std::vector<uint8_t> back(kBlockSize);
        ASSERT_EQ(kfs_.Pread(bfd, back.data(), back.size(), 0),
                  static_cast<ssize_t>(back.size()));
        int vfd = kfs_.OpenByIno(victim, vfs::kRdWr);
        if (vfd >= 0) {
          ASSERT_EQ(kfs_.Close(vfd), 0);
        }
        ASSERT_EQ(kfs_.Close(bfd), 0);
        kfs_.CommitJournal(/*fsync_barrier=*/false);
        ASSERT_EQ(kfs_.Unlink(b), 0);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  ExpectFsckClean();
}

// --- jbd2 commit pipeline -------------------------------------------------------------

TEST_F(KernelMetadataStress, MetadataHandlesProgressDuringCommitWriteout) {
  // The tentpole property of the pipelined journal: while one thread's fsync
  // commit writes out transaction T_n, metadata operations on other threads join
  // T_{n+1} and complete. The mid-writeout hook parks the committer after the seal
  // (barrier released, writeout not started) until the main thread has finished a
  // create and a rename. On the pre-pipeline journal those operations would block
  // on the exclusively-held barrier until the commit finished — with the committer
  // waiting on them in turn, the bounded wait below would expire and fail the test
  // instead of deadlocking.
  ASSERT_EQ(kfs_.Mkdir("/pipe"), 0);
  int fd = kfs_.Open("/pipe/f0", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  std::vector<uint8_t> block(kBlockSize, 0x42);
  ASSERT_EQ(kfs_.Pwrite(fd, block.data(), block.size(), 0),
            static_cast<ssize_t>(block.size()));

  std::atomic<bool> in_writeout{false};
  std::atomic<bool> ops_done{false};
  ext4sim::Journal* journal = kfs_.journal_for_test();
  journal->SetMidWriteoutHookForTest([&in_writeout, &ops_done] {
    in_writeout.store(true, std::memory_order_release);
    for (int i = 0; i < 20000 && !ops_done.load(std::memory_order_acquire); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(ops_done.load(std::memory_order_acquire))
        << "metadata handles made no progress while the commit writeout was held "
           "open — the journal is serializing handles behind the commit again";
  });
  std::thread committer([this, fd] { EXPECT_EQ(kfs_.Fsync(fd), 0); });
  while (!in_writeout.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // T_n is sealed but not durable; these handles join T_{n+1} and must not block.
  EXPECT_EQ(journal->CommittedTid(), 0u);
  int fd2 = kfs_.Open("/pipe/f1", vfs::kRdWr | vfs::kCreate);
  EXPECT_GE(fd2, 0);
  EXPECT_EQ(kfs_.Rename("/pipe/f1", "/pipe/f2"), 0);
  ops_done.store(true, std::memory_order_release);
  committer.join();
  journal->SetMidWriteoutHookForTest(nullptr);
  EXPECT_GE(journal->CommittedTid(), 1u);  // fsync's tid completed (log_wait_commit).
  // T_{n+1}'s mutations are intact and commit cleanly on their own.
  ASSERT_EQ(kfs_.Close(fd2), 0);
  kfs_.CommitJournal(/*fsync_barrier=*/false);
  vfs::StatBuf sb;
  EXPECT_EQ(kfs_.Stat("/pipe/f2", &sb), 0);
  ExpectFsckClean();
}

TEST_F(KernelMetadataStress, NamespaceChurnAgainstFsyncStorm) {
  // Parallel creates/renames racing a continuous fsync storm: every storm commit
  // seals whatever the churn threads dirtied and writes it out while they keep
  // going. Exercises the seal window (handle try-lock slow path), log_wait_commit
  // waiters piling onto in-flight tids, and deferred frees racing live handles —
  // the TSan pass runs this via the `concurrency` label.
  constexpr int kChurn = 3;
  constexpr int kIters = 60;
  ASSERT_EQ(kfs_.Mkdir("/storm"), 0);
  int storm_fd = kfs_.Open("/storm/sync-anchor", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(storm_fd, 0);
  std::atomic<bool> stop{false};
  std::thread storm([this, storm_fd, &stop] {
    uint8_t byte = 0;
    while (!stop.load(std::memory_order_acquire)) {
      // Keep the journal dirty so most fsyncs take a real commit, not the clean
      // fast path.
      ASSERT_EQ(kfs_.Pwrite(storm_fd, &byte, 1, byte), 1);
      ++byte;
      ASSERT_EQ(kfs_.Fsync(storm_fd), 0);
    }
  });
  std::vector<std::thread> churn;
  for (int t = 0; t < kChurn; ++t) {
    churn.emplace_back([this, t] {
      std::vector<uint8_t> block(kBlockSize, static_cast<uint8_t>(0x30 + t));
      std::string a = "/storm/a" + std::to_string(t);
      std::string b = "/storm/b" + std::to_string(t);
      for (int i = 0; i < kIters; ++i) {
        int fd = kfs_.Open(a, vfs::kRdWr | vfs::kCreate);
        ASSERT_GE(fd, 0);
        ASSERT_EQ(kfs_.Pwrite(fd, block.data(), block.size(), 0),
                  static_cast<ssize_t>(block.size()));
        ASSERT_EQ(kfs_.Close(fd), 0);
        ASSERT_EQ(kfs_.Rename(a, b), 0);
        ASSERT_EQ(kfs_.Unlink(b), 0);
        std::string sub = "/storm/d" + std::to_string(t);
        ASSERT_EQ(kfs_.Mkdir(sub), 0);
        ASSERT_EQ(kfs_.Rmdir(sub), 0);
      }
    });
  }
  for (auto& w : churn) {
    w.join();
  }
  stop.store(true, std::memory_order_release);
  storm.join();
  ASSERT_EQ(kfs_.Close(storm_fd), 0);
  ExpectFsckClean();
}

// --- Range-granular inode locks (shared hot file) -------------------------------------
//
// The tentpole group: size-preserving writes to disjoint ranges of ONE file must run
// in parallel in every mode, stay correct when whole-file restructurings (truncate,
// Fallocate, publish) race them, and — in strict mode — survive the log-full
// checkpoint's epoch'd quiesce with per-range entries in flight.

TEST(RangeLockGroup, SharedHotFileDisjointWritersScaleInAllModes) {
  // The bench driver doubles as the correctness harness: it preallocates one file,
  // writes disjoint interleaved strides from every thread, publishes once, and
  // verifies every slot. Virtual time is deterministic, so the scaling assertion is
  // exact: with per-range locks the N-thread elapsed stays near the 1-thread
  // elapsed (equal per-lane work); the pre-PR whole-inode lock made it ~N×.
  constexpr uint64_t kPerThread = 512 * 1024;
  for (Mode mode : {Mode::kPosix, Mode::kSync, Mode::kStrict}) {
    auto run = [mode](int threads) {
      sim::Context ctx;
      pmem::Device dev(&ctx, 2 * common::kGiB);
      ext4sim::Ext4Dax kfs(&dev);
      SplitFs fs(&kfs, ConcurrentOptions(mode, /*async_publish=*/false));
      return wl::RunParallelSharedHotFile(&fs, &ctx.clock, threads, "/hot",
                                          kPerThread, /*op_bytes=*/4096);
    };
    wl::ParallelResult solo = run(1);
    EXPECT_EQ(solo.errors, 0u) << ModeName(mode);
    wl::ParallelResult par = run(kThreads);
    EXPECT_EQ(par.errors, 0u) << ModeName(mode);
    EXPECT_EQ(par.ops, static_cast<uint64_t>(kThreads) * (kPerThread / 4096));
    EXPECT_LT(par.elapsed_ns, solo.elapsed_ns * kThreads / 2)
        << ModeName(mode) << ": disjoint range writers serialized on the inode";
  }
}

TEST(RangeLockGroup, RangeWritersRacingTruncateAndFallocate) {
  // Writers hammer their own disjoint slots while the main thread shrinks the file,
  // re-extends it with Fallocate, and publishes with fsync — the whole-file
  // exclusive operations the range writers must coexist with. Every write call must
  // fully succeed (a racing shrink re-classifies it, never fails it), and after the
  // dust settles each block is uniform: zeros (dropped by a truncate, re-extended as
  // a hole) or one owner's round byte — a mixed block means a torn or resurrected
  // write.
  constexpr uint64_t kSlot = 256 * 1024;
  constexpr int kRounds = 12;
  auto fill_of = [](int t, int round) {
    return static_cast<uint8_t>(0x40 ^ (t * 37) ^ (round * 11));
  };
  for (Mode mode : {Mode::kPosix, Mode::kSync, Mode::kStrict}) {
    sim::Context ctx;
    pmem::Device dev(&ctx, 2 * common::kGiB);
    ext4sim::Ext4Dax kfs(&dev);
    SplitFs fs(&kfs, ConcurrentOptions(mode, /*async_publish=*/false));
    const uint64_t file_bytes = static_cast<uint64_t>(kThreads) * kSlot;
    int fd = fs.Open("/churn-hot", vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(fs.Fallocate(fd, 0, file_bytes, /*keep_size=*/false), 0);
    ASSERT_EQ(fs.Fsync(fd), 0);

    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&fs, fd, t, &fill_of] {
        std::vector<uint8_t> buf(4096);
        for (int round = 0; round < kRounds; ++round) {
          std::memset(buf.data(), fill_of(t, round), buf.size());
          for (uint64_t off = 0; off < kSlot; off += buf.size()) {
            ASSERT_EQ(fs.Pwrite(fd, buf.data(), buf.size(), t * kSlot + off),
                      static_cast<ssize_t>(buf.size()));
          }
        }
      });
    }
    for (int i = 0; i < 20; ++i) {
      ASSERT_EQ(fs.Ftruncate(fd, file_bytes / 2), 0);
      ASSERT_EQ(fs.Fallocate(fd, 0, file_bytes, /*keep_size=*/false), 0);
      if (i % 4 == 3) {
        ASSERT_EQ(fs.Fsync(fd), 0);  // Publish (relink) racing the range writers.
      }
    }
    for (auto& w : writers) {
      w.join();
    }
    ASSERT_EQ(fs.Fsync(fd), 0);
    vfs::StatBuf st;
    ASSERT_EQ(fs.Fstat(fd, &st), 0);
    ASSERT_EQ(st.size, file_bytes);
    std::vector<uint8_t> back(4096);
    for (int t = 0; t < kThreads; ++t) {
      std::vector<bool> valid(256, false);
      for (int round = 0; round < kRounds; ++round) {
        valid[fill_of(t, round)] = true;
      }
      valid[0] = true;  // Truncated away and re-extended as a hole.
      for (uint64_t off = 0; off < kSlot; off += back.size()) {
        ASSERT_EQ(fs.Pread(fd, back.data(), back.size(), t * kSlot + off),
                  static_cast<ssize_t>(back.size()));
        EXPECT_TRUE(valid[back[0]])
            << ModeName(mode) << ": unknown byte at " << t * kSlot + off;
        for (uint64_t b = 1; b < back.size(); b += 127) {
          ASSERT_EQ(back[b], back[0])
              << ModeName(mode) << ": torn block at " << t * kSlot + off + b;
        }
      }
    }
    fs.Close(fd);
  }
}

TEST(RangeLockGroup, StrictWritersRaceLogFullCheckpointEpoch) {
  // Strict mode with a tiny op log: the per-range entries of four concurrent
  // writers fill it repeatedly, so the log-full checkpoint's epoch'd quiesce (close
  // the gate, drain in-flight range holders, sweep, reopen) runs many times with
  // writers mid-flight — the protocol the old code handled by seizing every file.
  // Every write must succeed, checkpoints must actually happen, and each slot must
  // end with its final-round bytes (a write backed out for the checkpoint and
  // replayed must not duplicate or lose its entry).
  constexpr uint64_t kSlot = 64 * 1024;
  constexpr int kRounds = 24;
  sim::Context ctx;
  pmem::Device dev(&ctx, 2 * common::kGiB);
  ext4sim::Ext4Dax kfs(&dev);
  Options o = ConcurrentOptions(Mode::kStrict, /*async_publish=*/false);
  // 64 slots. Re-writing an already-staged range updates the run in place (no new
  // entry), so writers also publish periodically below: each publish empties the
  // staged map and the next round re-stages — a steady stream of fresh per-range
  // entries that must overflow this log many times over.
  o.oplog_bytes = 4 * 1024;
  SplitFs fs(&kfs, o);
  const uint64_t file_bytes = static_cast<uint64_t>(kThreads) * kSlot;
  int fd = fs.Open("/epoch-hot", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(fs.Fallocate(fd, 0, file_bytes, /*keep_size=*/false), 0);
  ASSERT_EQ(fs.Fsync(fd), 0);

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&fs, fd, t] {
      std::vector<uint8_t> buf(4096);
      for (int round = 0; round < kRounds; ++round) {
        for (uint64_t off = 0; off < kSlot; off += buf.size()) {
          std::memset(buf.data(), 0x60 ^ (t * 29) ^ round, buf.size());
          ASSERT_EQ(fs.Pwrite(fd, buf.data(), buf.size(), t * kSlot + off),
                    static_cast<ssize_t>(buf.size()));
        }
        if (round % kThreads == t) {
          // Publish so the next round stages fresh runs (and fresh log entries)
          // instead of updating the staged bytes in place; the whole-file publish
          // also races the other threads' range writes.
          ASSERT_EQ(fs.Fsync(fd), 0);
        }
      }
    });
  }
  for (auto& w : writers) {
    w.join();
  }
  EXPECT_GT(fs.Checkpoints(), 0u) << "op log never filled; the gate went untested";
  ASSERT_EQ(fs.Fsync(fd), 0);
  std::vector<uint8_t> back(4096);
  for (int t = 0; t < kThreads; ++t) {
    uint8_t expect = static_cast<uint8_t>(0x60 ^ (t * 29) ^ (kRounds - 1));
    for (uint64_t off = 0; off < kSlot; off += back.size()) {
      ASSERT_EQ(fs.Pread(fd, back.data(), back.size(), t * kSlot + off),
                static_cast<ssize_t>(back.size()));
      for (uint64_t b = 0; b < back.size(); b += 97) {
        ASSERT_EQ(back[b], expect) << "slot " << t << " offset " << off + b;
      }
    }
  }
  fs.Close(fd);
}

TEST_F(KernelMetadataStress, DisjointRangePwritesOneInodeSameAndCrossBlock) {
  // K-Split's per-inode byte-range lock, exercised directly: writers share one
  // inode with disjoint BYTE ranges that collide on the same 4 KB block (the lock
  // acquires block-aligned, so same-block writers serialize and the hole-check →
  // insert sequence stays atomic per block) and with block-spanning ranges. No
  // update may be lost, and fsck must stay clean.
  constexpr uint64_t kStrip = 64;  // 64 threads' strips would fit one block; we use 4.
  constexpr uint64_t kSpan = 2 * kBlockSize;
  int fd = kfs_.Open("/krange", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  const uint64_t file_bytes = (kThreads + 1) * kSpan;
  {
    std::vector<uint8_t> zero(file_bytes, 0);
    ASSERT_EQ(kfs_.Pwrite(fd, zero.data(), file_bytes, 0),
              static_cast<ssize_t>(file_bytes));
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, fd, t] {
      std::vector<uint8_t> strip(kStrip, static_cast<uint8_t>(0x90 + t));
      std::vector<uint8_t> span(kSpan, static_cast<uint8_t>(0x20 + t));
      for (int i = 0; i < 200; ++i) {
        // Same-block strips: all four land in block 0, byte-disjoint.
        ASSERT_EQ(kfs_.Pwrite(fd, strip.data(), kStrip, t * kStrip),
                  static_cast<ssize_t>(kStrip));
        // Cross-block spans: each thread owns two whole blocks further out.
        ASSERT_EQ(kfs_.Pwrite(fd, span.data(), kSpan, (t + 1) * kSpan),
                  static_cast<ssize_t>(kSpan));
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  std::vector<uint8_t> back(file_bytes);
  ASSERT_EQ(kfs_.Pread(fd, back.data(), file_bytes, 0),
            static_cast<ssize_t>(file_bytes));
  for (int t = 0; t < kThreads; ++t) {
    for (uint64_t b = 0; b < kStrip; ++b) {
      ASSERT_EQ(back[t * kStrip + b], 0x90 + t) << "lost same-block strip " << t;
    }
    for (uint64_t b = 0; b < kSpan; ++b) {
      ASSERT_EQ(back[(t + 1) * kSpan + b], 0x20 + t) << "lost span " << t;
    }
  }
  kfs_.Close(fd);
  ExpectFsckClean();
}

// --- Driver integration + counters ----------------------------------------------------

TEST_P(ConcurrencyTest, ParallelAppendDriverRunsCleanAndCountsAdd) {
  wl::ParallelResult r = wl::RunParallelAppend(fs_.get(), &ctx_.clock, kThreads,
                                               "/drv", /*bytes_per_thread=*/2 * kMiB,
                                               /*op_bytes=*/4096, /*fsync_every=*/64);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_EQ(r.ops, static_cast<uint64_t>(kThreads) * (2 * kMiB / 4096));
  EXPECT_GT(r.elapsed_ns, 0u);
  Settle();
  EXPECT_GT(fs_->Relinks(), 0u);  // Publishes happened, counted without tearing.
  if (mode() == Mode::kStrict || async()) {
    EXPECT_GT(fs_->OpLogEntries(), 0u);  // Strict ops, or async relink intents.
  }
  EXPECT_EQ(fs_->PublishErrors(), 0u);
}

}  // namespace
