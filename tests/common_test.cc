// Unit tests for src/common: checksum, RNG/zipfian, byte helpers, Expected, and the
// epoch-based reclamation machinery (batched retire-list sweeps).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/checksum.h"
#include "src/common/epoch.h"
#include "src/common/random.h"
#include "src/common/status.h"

namespace {

TEST(Bytes, AlignHelpers) {
  EXPECT_EQ(common::AlignDown(4097, 4096), 4096u);
  EXPECT_EQ(common::AlignDown(4096, 4096), 4096u);
  EXPECT_EQ(common::AlignUp(4097, 4096), 8192u);
  EXPECT_EQ(common::AlignUp(4096, 4096), 4096u);
  EXPECT_EQ(common::AlignUp(0, 4096), 0u);
  EXPECT_TRUE(common::IsAligned(8192, 4096));
  EXPECT_FALSE(common::IsAligned(8193, 4096));
  EXPECT_EQ(common::DivCeil(1, 4096), 1u);
  EXPECT_EQ(common::DivCeil(4096, 4096), 1u);
  EXPECT_EQ(common::DivCeil(4097, 4096), 2u);
  EXPECT_EQ(common::DivCeil(0, 4096), 0u);
}

TEST(Crc32c, KnownVector) {
  // Standard CRC32C test vector: "123456789" -> 0xE3069283.
  EXPECT_EQ(common::Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, EmptyIsZero) { EXPECT_EQ(common::Crc32c("", 0), 0u); }

TEST(Crc32c, SeedChaining) {
  const char* data = "hello world";
  uint32_t whole = common::Crc32c(data, 11);
  uint32_t part = common::Crc32c(data, 5);
  part = common::Crc32c(data + 5, 6, part);
  EXPECT_EQ(whole, part);
}

TEST(Crc32c, DetectsSingleBitFlip) {
  std::vector<uint8_t> buf(64, 0xAB);
  uint32_t before = common::Crc32c(buf.data(), buf.size());
  buf[17] ^= 0x01;
  EXPECT_NE(before, common::Crc32c(buf.data(), buf.size()));
}

TEST(Crc32cSkip4, IgnoresSkippedField) {
  std::vector<uint8_t> a(64, 1), b(64, 1);
  b[8] = 0x55;  // Inside the skipped window [8, 12).
  b[9] = 0x66;
  EXPECT_EQ(common::Crc32cSkip4(a.data(), 64, 8), common::Crc32cSkip4(b.data(), 64, 8));
  b[12] = 0x77;  // Outside the window: must change the CRC.
  EXPECT_NE(common::Crc32cSkip4(a.data(), 64, 8), common::Crc32cSkip4(b.data(), 64, 8));
}

TEST(Rng, DeterministicPerSeed) {
  common::Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, UniformInRange) {
  common::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  common::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipfian, StaysInRange) {
  common::ZipfianGenerator z(1000, 0.99, 3);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(z.Next(), 1000u);
    EXPECT_LT(z.NextScrambled(), 1000u);
  }
}

TEST(Zipfian, IsSkewed) {
  // Rank 0 should dominate: with theta=0.99 over 1000 items, item 0 gets ~12% of mass.
  common::ZipfianGenerator z(1000, 0.99, 5);
  int zero_hits = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (z.Next() == 0) {
      ++zero_hits;
    }
  }
  EXPECT_GT(zero_hits, kDraws / 20);  // Far above the uniform 1/1000.
}

TEST(Zipfian, ScrambledSpreadsHotKeys) {
  common::ZipfianGenerator z(1000, 0.99, 5);
  std::set<uint64_t> distinct;
  for (int i = 0; i < 1000; ++i) {
    distinct.insert(z.NextScrambled());
  }
  EXPECT_GT(distinct.size(), 100u);  // Not collapsed onto a handful of ranks.
}

TEST(Expected, ValueAndError) {
  common::Expected<int> ok(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_EQ(ok.error().code(), 0);

  common::Expected<int> err(common::Errno(ENOENT));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().code(), ENOENT);
  EXPECT_EQ(err.error().negated(), -ENOENT);
  EXPECT_EQ(err.value_or(7), 7);
}

// --- Epoch GC: batched (generation-counted) retire-list sweeps ------------------------

struct CountedObject {
  explicit CountedObject(int* live) : live_(live) { ++*live_; }
  ~CountedObject() { --*live_; }
  int* live_;
};

TEST(EpochGc, RetireDefersSweepsUntilTheGenerationBoundary) {
  // An invalidation storm with no reader pinned: retirements accumulate without a
  // registry walk until the generation counter trips, and the one deferred sweep
  // then frees the whole batch via a single QuiescedHorizon() query.
  int live = 0;
  common::RetireList<CountedObject> list;
  constexpr uint64_t kGen = common::RetireList<CountedObject>::kSweepGeneration;
  for (uint64_t i = 1; i < kGen; ++i) {
    list.Retire(new CountedObject(&live));
    EXPECT_EQ(list.PendingForTest(), i) << "sweep ran before the generation filled";
  }
  EXPECT_EQ(live, static_cast<int>(kGen - 1));
  list.Retire(new CountedObject(&live));  // Generation boundary.
  EXPECT_EQ(list.PendingForTest(), 0u);
  EXPECT_EQ(live, 0);
}

TEST(EpochGc, PinnedReaderHoldsTheStormUntilQuiescence) {
  // A reader pinned across a storm of retirements: nothing it could still hold may
  // be freed, however many generation sweeps trip meanwhile; unpinning releases
  // the entire backlog on the next sweep.
  int live = 0;
  common::RetireList<CountedObject> list;
  constexpr int kStorm = 100;
  {
    common::EpochGc::ReadGuard pin(&common::EpochGc::Global());
    for (int i = 0; i < kStorm; ++i) {
      list.Retire(new CountedObject(&live));
    }
    // Generation sweeps ran but everything postdates the pin.
    EXPECT_EQ(live, kStorm);
    EXPECT_EQ(list.PendingForTest(), static_cast<size_t>(kStorm));
  }
  list.Sweep();
  EXPECT_EQ(list.PendingForTest(), 0u);
  EXPECT_EQ(live, 0);
}

TEST(EpochGc, DrainSpinsToFullQuiescence) {
  int live = 0;
  auto* list = new common::RetireList<CountedObject>();
  for (int i = 0; i < 3; ++i) {
    list->Retire(new CountedObject(&live));
  }
  list->Drain();
  EXPECT_EQ(live, 0);
  delete list;
}

}  // namespace
