// Unit + property tests for the extent map and block allocator — the structures the
// relink primitive manipulates, so no-alias / no-leak invariants are load-bearing.
#include <gtest/gtest.h>

#include <map>

#include "src/common/random.h"
#include "src/ext4/allocator.h"
#include "src/ext4/extent_map.h"

namespace {

using ext4sim::BlockAllocator;
using ext4sim::ExtentMap;
using ext4sim::PhysExtent;

TEST(ExtentMap, LookupHoleAndHit) {
  ExtentMap m;
  EXPECT_FALSE(m.Lookup(0).has_value());
  m.Insert(10, 100, 5);
  EXPECT_FALSE(m.Lookup(9).has_value());
  auto hit = m.Lookup(12);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->phys, 102u);
  EXPECT_EQ(hit->count, 3u);  // Run remaining from logical 12.
  EXPECT_FALSE(m.Lookup(15).has_value());
}

TEST(ExtentMap, MergesAdjacentContiguous) {
  ExtentMap m;
  m.Insert(0, 100, 4);
  m.Insert(4, 104, 4);  // Contiguous both logically and physically: one extent.
  EXPECT_EQ(m.ExtentCount(), 1u);
  auto hit = m.Lookup(0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->count, 8u);
}

TEST(ExtentMap, DoesNotMergeDiscontiguousPhys) {
  ExtentMap m;
  m.Insert(0, 100, 4);
  m.Insert(4, 200, 4);  // Logically adjacent, physically not.
  EXPECT_EQ(m.ExtentCount(), 2u);
}

TEST(ExtentMap, RemoveRangeSplitsBoundaries) {
  ExtentMap m;
  m.Insert(0, 100, 10);
  auto removed = m.RemoveRange(3, 4);  // Carve [3,7) out of [0,10).
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].start, 103u);
  EXPECT_EQ(removed[0].count, 4u);
  EXPECT_EQ(m.MappedBlocks(), 6u);
  EXPECT_TRUE(m.Lookup(2).has_value());
  EXPECT_FALSE(m.Lookup(3).has_value());
  EXPECT_FALSE(m.Lookup(6).has_value());
  auto right = m.Lookup(7);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->phys, 107u);
}

TEST(ExtentMap, FindRangeClipsToRequest) {
  ExtentMap m;
  m.Insert(0, 100, 4);
  m.Insert(8, 200, 4);
  auto found = m.FindRange(2, 8);  // Covers tail of first + head of second.
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].logical, 2u);
  EXPECT_EQ(found[0].phys, 102u);
  EXPECT_EQ(found[0].count, 2u);
  EXPECT_EQ(found[1].logical, 8u);
  EXPECT_EQ(found[1].count, 2u);
}

TEST(ExtentMap, ClearReturnsEverything) {
  ExtentMap m;
  m.Insert(0, 100, 4);
  m.Insert(10, 300, 2);
  auto all = m.Clear();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_TRUE(m.Empty());
}

// Property test: a randomized insert/remove workload against a reference model.
TEST(ExtentMapProperty, MatchesReferenceModel) {
  common::Rng rng(2024);
  ExtentMap m;
  std::map<uint64_t, uint64_t> model;  // logical block -> phys block
  uint64_t next_phys = 1;
  for (int iter = 0; iter < 2000; ++iter) {
    uint64_t logical = rng.Uniform(256);
    uint64_t count = 1 + rng.Uniform(8);
    if (rng.OneIn(2)) {
      // Insert into currently-hole sub-ranges only (the map's precondition).
      for (uint64_t lb = logical; lb < logical + count; ++lb) {
        if (model.count(lb) == 0) {
          m.Insert(lb, next_phys, 1);
          model[lb] = next_phys;
          ++next_phys;
        }
      }
    } else {
      m.RemoveRange(logical, count);
      for (uint64_t lb = logical; lb < logical + count; ++lb) {
        model.erase(lb);
      }
    }
    // Spot-check agreement.
    uint64_t probe = rng.Uniform(272);
    auto hit = m.Lookup(probe);
    auto mit = model.find(probe);
    if (mit == model.end()) {
      EXPECT_FALSE(hit.has_value()) << "iter " << iter << " probe " << probe;
    } else {
      ASSERT_TRUE(hit.has_value()) << "iter " << iter << " probe " << probe;
      EXPECT_EQ(hit->phys, mit->second);
    }
  }
  EXPECT_EQ(m.MappedBlocks(), model.size());
}

TEST(Allocator, AllocateAndFree) {
  BlockAllocator a(100, 1000);
  EXPECT_EQ(a.FreeBlocks(), 1000u);
  PhysExtent e = a.Allocate(10);
  EXPECT_EQ(e.count, 10u);
  EXPECT_GE(e.start, 100u);
  EXPECT_EQ(a.FreeBlocks(), 990u);
  EXPECT_TRUE(a.IsAllocated(e.start));
  a.Free(e);
  EXPECT_EQ(a.FreeBlocks(), 1000u);
  EXPECT_FALSE(a.IsAllocated(e.start));
}

TEST(Allocator, ExactMultiExtentAllocation) {
  BlockAllocator a(0, 64);
  // Fragment: allocate all, free every other 4-block chunk.
  std::vector<PhysExtent> all;
  ASSERT_TRUE(a.AllocateBlocks(64, &all));
  for (uint64_t i = 0; i < 64; i += 8) {
    a.Free({i, 4});
  }
  EXPECT_EQ(a.LargestFreeRun(), 4u);
  std::vector<PhysExtent> out;
  ASSERT_TRUE(a.AllocateBlocks(12, &out));  // Must span >= 3 fragments.
  EXPECT_GE(out.size(), 3u);
  uint64_t total = 0;
  for (const auto& e : out) {
    total += e.count;
  }
  EXPECT_EQ(total, 12u);
}

TEST(Allocator, FailsWhenFull) {
  BlockAllocator a(0, 8);
  std::vector<PhysExtent> out;
  ASSERT_TRUE(a.AllocateBlocks(8, &out));
  std::vector<PhysExtent> more;
  EXPECT_FALSE(a.AllocateBlocks(1, &more));
  EXPECT_TRUE(more.empty());
  EXPECT_EQ(a.Allocate(1).count, 0u);
}

TEST(Allocator, PartialGrantFromAllocate) {
  BlockAllocator a(0, 16);
  a.Allocate(16);
  a.Free({4, 2});
  PhysExtent e = a.Allocate(8);  // Only a 2-run exists.
  EXPECT_EQ(e.start, 4u);
  EXPECT_EQ(e.count, 2u);
}

// Property: allocation never double-grants and Free+Allocate conserves blocks.
TEST(AllocatorProperty, ConservationUnderChurn) {
  common::Rng rng(7);
  BlockAllocator a(50, 500);
  std::vector<PhysExtent> held;
  for (int iter = 0; iter < 3000; ++iter) {
    if (held.empty() || rng.OneIn(2)) {
      PhysExtent e = a.Allocate(1 + rng.Uniform(16));
      if (e.count > 0) {
        for (uint64_t b = e.start; b < e.start + e.count; ++b) {
          EXPECT_TRUE(a.IsAllocated(b));
        }
        held.push_back(e);
      }
    } else {
      size_t idx = rng.Uniform(held.size());
      a.Free(held[idx]);
      held.erase(held.begin() + idx);
    }
    uint64_t held_blocks = 0;
    for (const auto& e : held) {
      held_blocks += e.count;
    }
    EXPECT_EQ(a.FreeBlocks(), 500 - held_blocks);
  }
}

}  // namespace
