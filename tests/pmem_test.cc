// Tests for the emulated PM device: persistence semantics, crash rollback, timing.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/bytes.h"
#include "src/pmem/device.h"

namespace {

class DeviceTest : public ::testing::Test {
 protected:
  sim::Context ctx_;
  pmem::Device dev_{&ctx_, 16 * common::kMiB};
};

TEST_F(DeviceTest, StoreLoadRoundTrip) {
  std::vector<uint8_t> src(4096);
  for (size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<uint8_t>(i);
  }
  dev_.StoreNt(8192, src.data(), src.size(), sim::PmWriteKind::kUserData);
  std::vector<uint8_t> dst(4096);
  dev_.Load(8192, dst.data(), dst.size(), /*sequential=*/true, sim::PmReadKind::kUserData);
  EXPECT_EQ(src, dst);
}

TEST_F(DeviceTest, NtWrite4kCostsAnchor) {
  // Table 1 anchor: a 4 KB non-temporal write costs ~671 ns.
  std::vector<uint8_t> buf(4096, 7);
  uint64_t t0 = ctx_.clock.Now();
  dev_.StoreNt(0, buf.data(), buf.size(), sim::PmWriteKind::kUserData);
  uint64_t cost = ctx_.clock.Now() - t0;
  EXPECT_NEAR(static_cast<double>(cost), 671.0, 25.0);
}

TEST_F(DeviceTest, ReadLatencyClasses) {
  std::vector<uint8_t> buf(64);
  uint64_t t0 = ctx_.clock.Now();
  dev_.Load(0, buf.data(), 64, /*sequential=*/true, sim::PmReadKind::kMetadata);
  uint64_t seq = ctx_.clock.Now() - t0;
  t0 = ctx_.clock.Now();
  dev_.Load(1 * common::kMiB, buf.data(), 64, /*sequential=*/false, sim::PmReadKind::kMetadata);
  uint64_t rand = ctx_.clock.Now() - t0;
  EXPECT_GT(rand, seq);  // Table 2: random loads are slower.
}

TEST_F(DeviceTest, StatsBucketsByKind) {
  std::vector<uint8_t> buf(4096, 1);
  dev_.StoreNt(0, buf.data(), 4096, sim::PmWriteKind::kUserData);
  dev_.StoreNt(4096, buf.data(), 4096, sim::PmWriteKind::kJournal);
  dev_.StoreNt(8192, buf.data(), 64, sim::PmWriteKind::kLog);
  dev_.StoreNt(12288, buf.data(), 128, sim::PmWriteKind::kMetadata);
  EXPECT_EQ(ctx_.stats.data_bytes(), 4096u);
  EXPECT_EQ(ctx_.stats.journal_bytes(), 4096u);
  EXPECT_EQ(ctx_.stats.log_bytes(), 64u);
  EXPECT_EQ(ctx_.stats.metadata_bytes(), 128u);
  EXPECT_EQ(ctx_.stats.pm_write_bytes(), 4096u + 4096 + 64 + 128);
  EXPECT_GT(ctx_.stats.data_media_ns(), 0u);
}

TEST_F(DeviceTest, CrashRevertsUnfencedNtStore) {
  dev_.EnableCrashTracking(true);
  uint32_t v = 0xDEADBEEF;
  dev_.StoreNt(128, &v, sizeof(v), sim::PmWriteKind::kUserData);
  EXPECT_GT(dev_.UnpersistedLines(), 0u);
  dev_.Crash();  // No fence: the store never reached its persistence point.
  uint32_t back = 1;
  dev_.Load(128, &back, sizeof(back), true, sim::PmReadKind::kMetadata);
  EXPECT_EQ(back, 0u);
}

TEST_F(DeviceTest, FenceMakesNtStoreDurable) {
  dev_.EnableCrashTracking(true);
  uint32_t v = 0xDEADBEEF;
  dev_.StoreNt(128, &v, sizeof(v), sim::PmWriteKind::kUserData);
  dev_.Fence();
  EXPECT_EQ(dev_.UnpersistedLines(), 0u);
  dev_.Crash();
  uint32_t back = 0;
  dev_.Load(128, &back, sizeof(back), true, sim::PmReadKind::kMetadata);
  EXPECT_EQ(back, 0xDEADBEEFu);
}

TEST_F(DeviceTest, TemporalStoreNeedsClwbAndFence) {
  dev_.EnableCrashTracking(true);
  uint32_t v = 0x12345678;

  // Store alone: lost.
  dev_.StoreTemporal(0, &v, sizeof(v), sim::PmWriteKind::kUserData);
  dev_.Crash();
  uint32_t back = 1;
  dev_.Load(0, &back, sizeof(back), true, sim::PmReadKind::kMetadata);
  EXPECT_EQ(back, 0u);

  // Store + clwb, no fence: still lost (deterministic model: only fences persist).
  dev_.StoreTemporal(0, &v, sizeof(v), sim::PmWriteKind::kUserData);
  dev_.Clwb(0, sizeof(v));
  dev_.Crash();
  dev_.Load(0, &back, sizeof(back), true, sim::PmReadKind::kMetadata);
  EXPECT_EQ(back, 0u);

  // Full sequence: durable.
  dev_.StoreTemporal(0, &v, sizeof(v), sim::PmWriteKind::kUserData);
  dev_.Clwb(0, sizeof(v));
  dev_.Fence();
  dev_.Crash();
  dev_.Load(0, &back, sizeof(back), true, sim::PmReadKind::kMetadata);
  EXPECT_EQ(back, 0x12345678u);
}

TEST_F(DeviceTest, CrashPreservesOldContents) {
  dev_.EnableCrashTracking(true);
  uint64_t old_val = 0xAAAAAAAAAAAAAAAAull;
  dev_.StoreNt(256, &old_val, 8, sim::PmWriteKind::kUserData);
  dev_.Fence();
  uint64_t new_val = 0xBBBBBBBBBBBBBBBBull;
  dev_.StoreNt(256, &new_val, 8, sim::PmWriteKind::kUserData);  // Unfenced overwrite.
  dev_.Crash();
  uint64_t back = 0;
  dev_.Load(256, &back, 8, true, sim::PmReadKind::kMetadata);
  EXPECT_EQ(back, old_val);  // Rolls back to the last persisted value, not zero.
}

TEST_F(DeviceTest, TornCrashPersistsRandomSubset) {
  dev_.EnableCrashTracking(true);
  // Write 64 lines without a fence, then crash with torn-write simulation.
  std::vector<uint8_t> buf(64 * 64, 0xFF);
  dev_.StoreNt(0, buf.data(), buf.size(), sim::PmWriteKind::kUserData);
  common::Rng rng(123);
  dev_.Crash(&rng);
  std::vector<uint8_t> back(buf.size());
  dev_.Load(0, back.data(), back.size(), true, sim::PmReadKind::kMetadata);
  int survived = 0, lost = 0;
  for (int line = 0; line < 64; ++line) {
    if (back[line * 64] == 0xFF) {
      ++survived;
    } else {
      ++lost;
    }
  }
  EXPECT_GT(survived, 0);  // Some lines made it out of the cache...
  EXPECT_GT(lost, 0);      // ...and some did not: a torn write.
}

TEST_F(DeviceTest, TrackingDisabledSkipsShadowing) {
  std::vector<uint8_t> buf(4096, 3);
  dev_.StoreNt(0, buf.data(), buf.size(), sim::PmWriteKind::kUserData);
  EXPECT_EQ(dev_.UnpersistedLines(), 0u);  // No shadow images kept.
}

TEST_F(DeviceTest, RewindSupportsBackgroundAttribution) {
  uint64_t t0 = ctx_.clock.Now();
  ctx_.clock.Advance(1000);
  ctx_.clock.Rewind(1000);
  EXPECT_EQ(ctx_.clock.Now(), t0);
}

}  // namespace
