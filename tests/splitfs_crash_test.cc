// Crash-consistency tests for SplitFS: the Table 3 guarantee matrix, strict-mode op-log
// replay (§3.3, §5.3), torn-entry handling, replay idempotency, and the paper's §5.3
// correctness methodology (SplitFS end state == ext4 DAX end state).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"

namespace {

using common::kBlockSize;
using common::kMiB;
using splitfs::Mode;

splitfs::Options SmallOpts(Mode m) {
  splitfs::Options o;
  o.mode = m;
  o.num_staging_files = 2;
  o.staging_file_bytes = 8 * kMiB;
  o.oplog_bytes = 1 * kMiB;
  return o;
}

struct CrashWorld {
  sim::Context ctx;
  std::unique_ptr<pmem::Device> dev;
  std::unique_ptr<ext4sim::Ext4Dax> kfs;
  std::unique_ptr<splitfs::SplitFs> fs;

  explicit CrashWorld(Mode m) {
    dev = std::make_unique<pmem::Device>(&ctx, 512 * kMiB);
    kfs = std::make_unique<ext4sim::Ext4Dax>(dev.get());
    fs = std::make_unique<splitfs::SplitFs>(kfs.get(), SmallOpts(m));
    dev->EnableCrashTracking(true);
  }

  void CrashAndRecover(common::Rng* rng = nullptr) {
    dev->Crash(rng);
    ASSERT_EQ(kfs->Recover(), 0);
    ASSERT_EQ(fs->Recover(), 0);
  }
};

std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 11);
  }
  return v;
}

TEST(SplitFsCrash, PosixAppendWithoutFsyncIsLostAtomically) {
  CrashWorld w(Mode::kPosix);
  int fd = w.fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  w.fs->Fsync(fd);
  auto data = Pattern(2 * kBlockSize, 1);
  w.fs->Pwrite(fd, data.data(), data.size(), 0);
  w.CrashAndRecover();
  vfs::StatBuf st;
  ASSERT_EQ(w.fs->Stat("/f", &st), 0);
  EXPECT_EQ(st.size, 0u);  // Appends require fsync in POSIX mode; loss is total.
}

TEST(SplitFsCrash, PosixAppendWithFsyncSurvives) {
  CrashWorld w(Mode::kPosix);
  int fd = w.fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(2 * kBlockSize + 777, 2);
  w.fs->Pwrite(fd, data.data(), data.size(), 0);
  ASSERT_EQ(w.fs->Fsync(fd), 0);
  w.CrashAndRecover();
  int fd2 = w.fs->Open("/f", vfs::kRdWr);
  ASSERT_GE(fd2, 0);
  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(w.fs->Pread(fd2, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
}

TEST(SplitFsCrash, StrictAppendSurvivesWithoutFsyncViaLogReplay) {
  // Strict mode: the op-log entry + staged data are durable at the end of the write
  // call; recovery replays the relink even though fsync never ran.
  CrashWorld w(Mode::kStrict);
  int fd = w.fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  w.fs->Fsync(fd);
  auto data = Pattern(3 * kBlockSize, 3);
  w.fs->Pwrite(fd, data.data(), data.size(), 0);
  uint64_t relinks_before = w.kfs->JournalCommits();
  w.CrashAndRecover();
  EXPECT_GT(w.kfs->JournalCommits(), relinks_before);  // Replay performed relinks.
  int fd2 = w.fs->Open("/f", vfs::kRdWr);
  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(w.fs->Pread(fd2, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
}

TEST(SplitFsCrash, StrictUnalignedAppendReplaysExactBytes) {
  CrashWorld w(Mode::kStrict);
  int fd = w.fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  w.fs->Fsync(fd);
  auto a = Pattern(1000, 4);
  auto b = Pattern(7000, 5);
  w.fs->Pwrite(fd, a.data(), a.size(), 0);
  w.fs->Pwrite(fd, b.data(), b.size(), 1000);
  w.CrashAndRecover();
  int fd2 = w.fs->Open("/f", vfs::kRdWr);
  vfs::StatBuf st;
  w.fs->Fstat(fd2, &st);
  EXPECT_EQ(st.size, 8000u);
  std::vector<uint8_t> back(8000);
  ASSERT_EQ(w.fs->Pread(fd2, back.data(), 8000, 0), 8000);
  EXPECT_EQ(0, std::memcmp(back.data(), a.data(), 1000));
  EXPECT_EQ(0, std::memcmp(back.data() + 1000, b.data(), 7000));
}

TEST(SplitFsCrash, StrictOverwriteAtomicUnderTornCrash) {
  CrashWorld w(Mode::kStrict);
  int fd = w.fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  auto old_data = Pattern(4 * kBlockSize, 6);
  w.fs->Pwrite(fd, old_data.data(), old_data.size(), 0);
  w.fs->Fsync(fd);
  auto new_data = Pattern(4 * kBlockSize, 7);
  w.fs->Pwrite(fd, new_data.data(), new_data.size(), 0);
  common::Rng rng(555);
  w.CrashAndRecover(&rng);
  int fd2 = w.fs->Open("/f", vfs::kRdWr);
  std::vector<uint8_t> back(old_data.size());
  ASSERT_EQ(w.fs->Pread(fd2, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_TRUE(back == old_data || back == new_data);  // Never a mix.
}

TEST(SplitFsCrash, ReplayIsIdempotentAcrossDoubleCrash) {
  CrashWorld w(Mode::kStrict);
  int fd = w.fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  w.fs->Fsync(fd);
  auto data = Pattern(2 * kBlockSize, 8);
  w.fs->Pwrite(fd, data.data(), data.size(), 0);
  w.CrashAndRecover();
  // Crash again immediately — replaying an already-applied log must be a no-op.
  w.dev->Crash();
  ASSERT_EQ(w.kfs->Recover(), 0);
  ASSERT_EQ(w.fs->Recover(), 0);
  int fd2 = w.fs->Open("/f", vfs::kRdWr);
  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(w.fs->Pread(fd2, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
  vfs::StatBuf st;
  w.fs->Fstat(fd2, &st);
  EXPECT_EQ(st.size, data.size());
}

TEST(SplitFsCrash, UnlinkedTargetSkippedDuringReplay) {
  CrashWorld w(Mode::kStrict);
  int fd = w.fs->Open("/doomed", vfs::kRdWr | vfs::kCreate);
  w.fs->Fsync(fd);
  auto data = Pattern(kBlockSize, 9);
  w.fs->Pwrite(fd, data.data(), data.size(), 0);
  w.fs->Close(fd);  // Publishes.
  ASSERT_EQ(w.fs->Unlink("/doomed"), 0);
  w.CrashAndRecover();  // Log still holds the append entry; target is gone.
  vfs::StatBuf st;
  EXPECT_EQ(w.fs->Stat("/doomed", &st), -ENOENT);
}

TEST(SplitFsCrash, RecoveredInstanceKeepsServing) {
  CrashWorld w(Mode::kStrict);
  int fd = w.fs->Open("/before", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(kBlockSize, 10);
  w.fs->Pwrite(fd, data.data(), data.size(), 0);
  w.fs->Fsync(fd);
  w.CrashAndRecover();
  // Post-recovery: new files, new staging epoch, everything functional.
  int fd2 = w.fs->Open("/after", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd2, 0);
  auto fresh = Pattern(2 * kBlockSize, 11);
  ASSERT_EQ(w.fs->Pwrite(fd2, fresh.data(), fresh.size(), 0),
            static_cast<ssize_t>(fresh.size()));
  ASSERT_EQ(w.fs->Fsync(fd2), 0);
  std::vector<uint8_t> back(fresh.size());
  ASSERT_EQ(w.fs->Pread(fd2, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, fresh);
}

// §5.3 methodology: run the same operation sequence against plain ext4-DAX and
// against SplitFS (with fsyncs), then compare the resulting file-system states.
TEST(SplitFsCorrectness, StateMatchesExt4AfterMixedWorkload) {
  sim::Context ctx_a, ctx_b;
  pmem::Device dev_a(&ctx_a, 512 * kMiB), dev_b(&ctx_b, 512 * kMiB);
  ext4sim::Ext4Dax ext4(&dev_a);
  ext4sim::Ext4Dax under(&dev_b);
  splitfs::SplitFs split(&under, SmallOpts(Mode::kPosix));

  auto drive = [](vfs::FileSystem* fs) {
    common::Rng rng(321);
    fs->Mkdir("/w");
    for (int i = 0; i < 30; ++i) {
      std::string path = "/w/f" + std::to_string(i % 7);
      int fd = fs->Open(path, vfs::kRdWr | vfs::kCreate);
      ASSERT_GE(fd, 0);
      auto data = Pattern(500 + rng.Uniform(8000), static_cast<uint8_t>(i));
      vfs::StatBuf st;
      fs->Fstat(fd, &st);
      uint64_t off = st.size > 0 && rng.OneIn(2) ? rng.Uniform(st.size) : st.size;
      ASSERT_EQ(fs->Pwrite(fd, data.data(), data.size(), off),
                static_cast<ssize_t>(data.size()));
      if (rng.OneIn(3)) {
        ASSERT_EQ(fs->Fsync(fd), 0);
      }
      ASSERT_EQ(fs->Close(fd), 0);
      if (rng.OneIn(10)) {
        fs->Rename(path, path + "x");
        fs->Rename(path + "x", path);
      }
    }
    // Final fsync pass so both systems publish everything.
    for (int i = 0; i < 7; ++i) {
      std::string path = "/w/f" + std::to_string(i);
      int fd = fs->Open(path, vfs::kRdWr);
      if (fd >= 0) {
        fs->Fsync(fd);
        fs->Close(fd);
      }
    }
  };
  drive(&ext4);
  drive(&split);

  // Compare the visible state file by file.
  std::vector<std::string> names_a, names_b;
  ASSERT_EQ(ext4.ReadDir("/w", &names_a), 0);
  ASSERT_EQ(split.ReadDir("/w", &names_b), 0);
  ASSERT_EQ(names_a, names_b);
  for (const auto& name : names_a) {
    std::string path = "/w/" + name;
    vfs::StatBuf sa, sb;
    ASSERT_EQ(ext4.Stat(path, &sa), 0);
    ASSERT_EQ(split.Stat(path, &sb), 0);
    ASSERT_EQ(sa.size, sb.size) << path;
    int fa = ext4.Open(path, vfs::kRdOnly);
    int fb = split.Open(path, vfs::kRdOnly);
    std::vector<uint8_t> ba(sa.size), bb(sb.size);
    ASSERT_EQ(ext4.Pread(fa, ba.data(), ba.size(), 0), static_cast<ssize_t>(ba.size()));
    ASSERT_EQ(split.Pread(fb, bb.data(), bb.size(), 0), static_cast<ssize_t>(bb.size()));
    EXPECT_EQ(ba, bb) << path;
    ext4.Close(fa);
    split.Close(fb);
  }
}

}  // namespace
