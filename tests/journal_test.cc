// Unit tests for the jbd2-style journal model: transaction emptiness semantics,
// the two-transaction commit pipeline (tids, log_wait_commit, the seal window),
// and newest-first rollback across a mid-writeout crash.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/crash/crash_plan.h"
#include "src/core/split_fs.h"
#include "src/ext4/journal.h"
#include "src/pmem/device.h"

namespace {

using ext4sim::Journal;
using ext4sim::MetaBlockId;
using ext4sim::MetaKind;

class JournalTest : public ::testing::Test {
 protected:
  JournalTest()
      : dev_(&ctx_, 4 * common::kMiB),
        journal_(&dev_, /*journal_start_block=*/1, /*journal_blocks=*/64) {}

  sim::Context ctx_;
  pmem::Device dev_;
  Journal journal_;
};

TEST_F(JournalTest, FreshJournalIsEmptyAndCleanFsyncCommitsNothing) {
  EXPECT_TRUE(journal_.RunningEmpty());
  EXPECT_EQ(journal_.RunningTid(), 1u);
  EXPECT_EQ(journal_.CommittedTid(), 0u);
  uint64_t t0 = ctx_.clock.Now();
  journal_.CommitRunning(/*fsync_barrier=*/true);
  // Clean fast path: no commit record, no fsync handshake charge, tid unchanged.
  EXPECT_EQ(journal_.commits(), 0u);
  EXPECT_EQ(ctx_.clock.Now(), t0);
  EXPECT_EQ(journal_.RunningTid(), 1u);
}

TEST_F(JournalTest, OnCommitOnlyTransactionIsNotEmptyAndCommits) {
  // A transaction holding only a deferred action (e.g. an inode free with no dirty
  // block of its own) must not report empty: the action still needs its commit
  // record, and the clean-fsync fast path must not skip it.
  bool ran = false;
  {
    Journal::Handle h(&journal_);
    journal_.OnCommit([&ran] { ran = true; });
  }
  EXPECT_FALSE(journal_.RunningEmpty());
  journal_.CommitRunning(/*fsync_barrier=*/false);
  EXPECT_TRUE(ran);
  EXPECT_EQ(journal_.commits(), 1u);
  EXPECT_TRUE(journal_.RunningEmpty());
  EXPECT_EQ(journal_.CommittedTid(), 1u);
}

TEST_F(JournalTest, TidsAdvancePerCommitAndWaitReturnsForDurableTids) {
  {
    Journal::Handle h(&journal_);
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, 1), nullptr);
  }
  EXPECT_EQ(journal_.RunningTid(), 1u);
  journal_.CommitRunning(/*fsync_barrier=*/false);
  EXPECT_EQ(journal_.CommittedTid(), 1u);
  EXPECT_EQ(journal_.RunningTid(), 2u);  // Fresh transaction opened by the seal.
  journal_.WaitForCommit(1);             // Durable tid: returns immediately.

  {
    Journal::Handle h(&journal_);
    journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, 7), nullptr);
  }
  journal_.CommitRunning(/*fsync_barrier=*/true);
  EXPECT_EQ(journal_.CommittedTid(), 2u);
  EXPECT_EQ(journal_.commits(), 2u);
}

TEST_F(JournalTest, MidWriteoutHandlesJoinTheFreshRunningTransaction) {
  {
    Journal::Handle h(&journal_);
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, 1), nullptr);
  }
  // The hook runs after the seal with the barrier released: a handle taken here
  // models a metadata operation overlapping T_n's writeout. It must join T_{n+1}
  // without blocking and without being captured by T_n's commit.
  bool hook_ran = false;
  journal_.SetMidWriteoutHookForTest([this, &hook_ran] {
    hook_ran = true;
    EXPECT_EQ(journal_.RunningTid(), 2u);
    EXPECT_EQ(journal_.CommittedTid(), 0u);  // T_1 not durable yet.
    Journal::Handle h(&journal_);
    journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, 9), nullptr);
  });
  journal_.CommitRunning(/*fsync_barrier=*/false);
  journal_.SetMidWriteoutHookForTest(nullptr);
  EXPECT_TRUE(hook_ran);
  EXPECT_EQ(journal_.CommittedTid(), 1u);
  EXPECT_FALSE(journal_.RunningEmpty());  // The hook's dirt lives in T_2.
  journal_.CommitRunning(/*fsync_barrier=*/false);
  EXPECT_EQ(journal_.CommittedTid(), 2u);
  EXPECT_TRUE(journal_.RunningEmpty());
}

TEST_F(JournalTest, MidWriteoutCrashRollsBackBothTransactionsNewestFirst) {
  // T_1 carries undos A1, A2; the hook stacks T_2 (undos B1, B2) on top and then
  // arms a crash inside T_1's journal writeout. Recovery must unwind the running
  // T_2 first, then the unsealed committing T_1, newest mutation first overall:
  // B2, B1, A2, A1. Any other order would re-apply state the later transaction
  // already depended on (the dangling-dirent shape the ext4-level matrix checks).
  std::vector<std::string> order;
  {
    Journal::Handle h(&journal_);
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, 1),
                   [&order] { order.push_back("A1"); });
    journal_.Dirty(MetaBlockId(MetaKind::kDirBlock, 2),
                   [&order] { order.push_back("A2"); });
    journal_.OnCommit([&order] { order.push_back("T1-action"); });
  }
  crash::CrashInjector injector({crash::CrashPoint::Trigger::kAfterStore, 1});
  journal_.SetMidWriteoutHookForTest([this, &injector, &order] {
    {
      Journal::Handle h(&journal_);
      journal_.Dirty(MetaBlockId(MetaKind::kExtentTree, 3),
                     [&order] { order.push_back("B1"); });
      journal_.Dirty(MetaBlockId(MetaKind::kSuperblock, 0),
                     [&order] { order.push_back("B2"); });
      journal_.OnCommit([&order] { order.push_back("T2-action"); });
    }
    dev_.SetObserver(&injector);  // Store #1 of the writeout never completes.
  });
  bool crashed = false;
  try {
    journal_.CommitRunning(/*fsync_barrier=*/true);
  } catch (const crash::CrashSignal&) {
    crashed = true;
  }
  dev_.SetObserver(nullptr);
  journal_.SetMidWriteoutHookForTest(nullptr);
  ASSERT_TRUE(crashed);
  EXPECT_EQ(journal_.commits(), 0u);  // The commit record never landed.

  journal_.RecoverDiscardRunning();
  ASSERT_EQ(order.size(), 4u);  // Deferred actions died with their transactions.
  EXPECT_EQ(order[0], "B2");
  EXPECT_EQ(order[1], "B1");
  EXPECT_EQ(order[2], "A2");
  EXPECT_EQ(order[3], "A1");
  EXPECT_TRUE(journal_.RunningEmpty());
  // Recovery settles every discarded tid: the horizon sits just below the fresh
  // running transaction, so a post-recovery clean fsync takes the fast path
  // (no commit record) instead of chasing tids that can never commit.
  EXPECT_EQ(journal_.CommittedTid(), journal_.RunningTid() - 1);
  journal_.CommitRunning(/*fsync_barrier=*/true);
  EXPECT_EQ(journal_.commits(), 0u);

  // The recovered journal keeps serving: a fresh transaction commits normally.
  {
    Journal::Handle h(&journal_);
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, 5), nullptr);
  }
  journal_.CommitRunning(/*fsync_barrier=*/false);
  EXPECT_EQ(journal_.commits(), 1u);
  EXPECT_EQ(journal_.CommittedTid(), journal_.RunningTid() - 1);
}

TEST_F(JournalTest, CommitStandaloneBypassesTheRunningTransaction) {
  {
    Journal::Handle h(&journal_);
    journal_.Dirty(MetaBlockId(MetaKind::kInodeTable, 1), nullptr);
  }
  journal_.CommitStandalone(3);
  // The standalone commit wrote its record but left the running transaction (and
  // its tid horizon) untouched.
  EXPECT_EQ(journal_.commits(), 1u);
  EXPECT_FALSE(journal_.RunningEmpty());
  EXPECT_EQ(journal_.CommittedTid(), 0u);
}

// --- Commit coalescing (j_commit_interval) --------------------------------------------

TEST(JournalCoalescingTest, SameWindowFsyncsShareOneWriteout) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 4 * common::kMiB);
  Journal j(&dev, /*journal_start_block=*/1, /*journal_blocks=*/64,
            /*commit_interval_ns=*/100'000);
  {
    Journal::Handle h(&j);
    j.Dirty(MetaBlockId(MetaKind::kInodeTable, 1), nullptr);
  }
  // The window hook runs with the pipeline slot held and the running transaction
  // still open: a metadata operation landing here joins tid 1, and a concurrent
  // fsync targeting tid 1 queues behind the slot and finds its tid already durable
  // — one writeout serves both, jbd2's coalescing.
  std::thread racer;
  bool hook_ran = false;
  j.SetCommitWindowHookForTest([&] {
    hook_ran = true;
    {
      Journal::Handle h(&j);
      j.Dirty(MetaBlockId(MetaKind::kDirBlock, 7), nullptr);
    }
    racer = std::thread([&j] { j.CommitRunning(/*fsync_barrier=*/true); });
  });
  j.CommitRunning(/*fsync_barrier=*/true);
  racer.join();
  j.SetCommitWindowHookForTest(nullptr);
  ASSERT_TRUE(hook_ran);
  // Two fsyncs, two dirty operations, ONE commit record.
  EXPECT_EQ(j.commits(), 1u);
  EXPECT_EQ(j.CommittedTid(), 1u);
  EXPECT_TRUE(j.RunningEmpty());
}

TEST(JournalCoalescingTest, LogWaitCommitLatencyIncludesTheWindow) {
  constexpr uint64_t kInterval = 250'000;
  sim::Context ctx;
  pmem::Device dev(&ctx, 4 * common::kMiB);
  Journal j(&dev, 1, 64, kInterval);
  {
    Journal::Handle h(&j);
    j.Dirty(MetaBlockId(MetaKind::kInodeTable, 1), nullptr);
  }
  uint64_t t0 = ctx.clock.Now();
  j.CommitRunning(/*fsync_barrier=*/true);
  // The latency-for-bandwidth trade is real: the committer's fsync pays the full
  // delay window on top of the writeout.
  EXPECT_GE(ctx.clock.Now() - t0, kInterval);
  EXPECT_EQ(j.commits(), 1u);
}

TEST(JournalCoalescingTest, IntervalZeroIsIdenticalToTheDefaultPipeline) {
  // interval=0 must not merely be "fast": the virtual timeline, commit count, and
  // log-space accounting have to match the three-arg constructor exactly, so every
  // pre-coalescing benchmark and crash fingerprint stays bit-identical.
  auto run = [](bool explicit_zero) {
    sim::Context ctx;
    pmem::Device dev(&ctx, 4 * common::kMiB);
    auto j = explicit_zero ? std::make_unique<Journal>(&dev, 1, 64, 0)
                           : std::make_unique<Journal>(&dev, 1, 64);
    for (int i = 0; i < 5; ++i) {
      {
        Journal::Handle h(j.get());
        j->Dirty(MetaBlockId(MetaKind::kInodeTable, 1 + i), nullptr);
        j->Dirty(MetaBlockId(MetaKind::kDirBlock, 100 + i), nullptr);
      }
      j->CommitRunning(/*fsync_barrier=*/(i % 2) == 0);
    }
    j->CommitStandalone(2);
    struct Result {
      uint64_t now, commits, free_bytes;
    };
    return Result{ctx.clock.Now(), j->commits(), j->FreeLogBytes()};
  };
  auto a = run(false);
  auto b = run(true);
  EXPECT_EQ(a.now, b.now);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.free_bytes, b.free_bytes);
}

TEST(JournalCoalescingTest, LogFullDuringWindowForcesImmediateSeal) {
  // Smallest legal journal (8 blocks = 32 KiB) and an absurd one-second window:
  // once the log is nearly full, holding the window open would only deepen the
  // checkpoint stall, so the seal must go immediately — the commit's virtual
  // latency stays far below the configured interval.
  constexpr uint64_t kHugeInterval = 1'000'000'000;
  sim::Context ctx;
  pmem::Device dev(&ctx, 4 * common::kMiB);
  Journal j(&dev, 1, /*journal_blocks=*/8, kHugeInterval);
  uint64_t windowed = 0;
  for (int i = 0; i < 6; ++i) {
    {
      Journal::Handle h(&j);
      j.Dirty(MetaBlockId(MetaKind::kInodeTable, 1 + i), nullptr);
    }
    uint64_t t0 = ctx.clock.Now();
    j.CommitRunning(/*fsync_barrier=*/false);
    if (ctx.clock.Now() - t0 >= kHugeInterval) {
      ++windowed;
    }
  }
  EXPECT_EQ(j.commits(), 6u);
  // The first commits pay the window; the later ones hit the near-full guard and
  // seal immediately, and the wrap triggers modeled checkpoint writeback instead
  // of a silent cursor recycle.
  EXPECT_LT(windowed, 6u);
  EXPECT_GE(j.CheckpointStalls(), 1u);
  EXPECT_GT(j.FreeLogBytes(), 0u);
}

// --- Publish-batch auto-sizing (Options::publish_batch == 0) --------------------------
//
// Queues kFiles publishes behind a paused publisher, then releases it and counts
// journal commits while the backlog drains. A fixed publish_batch=1 relinks one
// file per pass (one commit each); auto sizing takes the whole backlog in one
// pass, so a deeper queue drains in fewer commits.
uint64_t CommitsToDrainBacklog(uint32_t publish_batch) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * common::kMiB);
  ext4sim::Ext4Dax kfs(&dev);
  splitfs::Options o;
  o.mode = splitfs::Mode::kPosix;
  o.num_staging_files = 2;
  o.staging_file_bytes = 4 * common::kMiB;
  o.oplog_bytes = 4 * common::kMiB;
  o.async_relink = true;
  o.publisher_thread = true;
  o.publish_batch = publish_batch;
  splitfs::SplitFs fs(&kfs, o);
  fs.set_publisher_paused_for_test(true);

  constexpr int kFiles = 6;
  const std::string rec(8 * 1024, 'b');
  std::vector<int> fds;
  for (int i = 0; i < kFiles; ++i) {
    int fd = fs.Open("/f" + std::to_string(i), vfs::kCreate | vfs::kRdWr);
    EXPECT_GE(fd, 0);
    EXPECT_EQ(fs.Pwrite(fd, rec.data(), rec.size(), 0),
              static_cast<ssize_t>(rec.size()));
    EXPECT_EQ(fs.Fsync(fd), 0);  // Acks at the intent fence, queues the publish.
    fds.push_back(fd);
  }
  EXPECT_EQ(fs.PublishQueueDepth(), static_cast<size_t>(kFiles));

  uint64_t before = kfs.JournalCommits();
  fs.set_publisher_paused_for_test(false);
  fs.WaitForPublishes();
  uint64_t commits = kfs.JournalCommits() - before;
  for (int fd : fds) {
    EXPECT_EQ(fs.Close(fd), 0);
  }
  return commits;
}

TEST(PublishBatchTest, AutoSizingDrainsDeepQueueInFewerCommits) {
  uint64_t fixed = CommitsToDrainBacklog(/*publish_batch=*/1);
  uint64_t autosized = CommitsToDrainBacklog(/*publish_batch=*/0);
  // One-at-a-time pays one commit per queued file; the auto batch amortizes the
  // whole backlog into (nearly) one.
  EXPECT_GE(fixed, 6u);
  EXPECT_LE(autosized, 2u);
  EXPECT_LT(autosized, fixed);
}

}  // namespace
