// TenantRouter tests (ctest labels: `tenant` + `concurrency` so the churn-race
// suite runs under the TSan pass of scripts/check.sh --tsan).
//
// Covers the multi-tenant claims:
//   * path/fd routing: first component picks the tenant, fds go stale at unmount,
//     cross-tenant rename is -EXDEV, unknown namespaces are -ENOENT;
//   * 64 mounted tenants run on exactly 3 shared service threads (one publisher,
//     one replenisher, one journal-commit worker) with every tenant's data intact;
//   * per-tenant QoS: a throttled tenant's journal/staging waits land in the
//     contention ledger under tenant.<id>.* while an unthrottled neighbor pays
//     nothing, and the tenant.<id>.* gauges appear at mount and vanish at unmount;
//   * mount/unmount churn racing opens, writes, and stats on the shared router
//     tables (the TSan target for router fd/path races).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/tenant/tenant_router.h"

namespace {

using common::kGiB;
using common::kMiB;
using splitfs::Mode;
using tenant::RouterOptions;
using tenant::TenantOptions;
using tenant::TenantRouter;

// Small per-tenant footprint so dozens of instances fit one simulated device.
TenantOptions SmallTenant(Mode mode, bool async_publish) {
  TenantOptions t;
  t.fs.mode = mode;
  t.fs.num_staging_files = 2;
  t.fs.staging_file_bytes = 1 * kMiB;
  t.fs.oplog_bytes = 1 * kMiB;
  t.fs.replenish_thread = true;  // Rides the shared replenisher pool.
  if (async_publish) {
    t.fs.async_relink = true;
    t.fs.publisher_thread = true;  // Rides the shared publisher pool.
  }
  return t;
}

class TenantTest : public ::testing::Test {
 protected:
  TenantTest() : dev_(&ctx_, 2 * kGiB), kfs_(&dev_) {}

  bool LedgerHas(const std::string& resource, uint64_t* waited_ns = nullptr) {
    for (const auto& [name, e] : ctx_.obs.ledger.Snapshot()) {
      if (name == resource) {
        if (waited_ns != nullptr) {
          *waited_ns = e.waited_ns;
        }
        return true;
      }
    }
    return false;
  }

  bool GaugeExists(const std::string& name) {
    for (const auto& s : ctx_.obs.metrics.Snapshot()) {
      if (s.name == name) {
        return true;
      }
    }
    return false;
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
};

TEST_F(TenantTest, PathAndFdRouting) {
  TenantRouter router(&kfs_);
  ASSERT_EQ(router.Mount("db", SmallTenant(Mode::kStrict, /*async=*/false)), 0);
  ASSERT_EQ(router.Mount("logs", SmallTenant(Mode::kPosix, /*async=*/true)), 0);
  EXPECT_EQ(router.Mount("db", SmallTenant(Mode::kPosix, false)), -EEXIST);
  EXPECT_EQ(router.Mount("", SmallTenant(Mode::kPosix, false)), -EINVAL);
  EXPECT_EQ(router.Mount("a/b", SmallTenant(Mode::kPosix, false)), -EINVAL);
  EXPECT_EQ(router.TenantCount(), 2u);

  // Data written through the router round-trips within each namespace.
  int dbfd = router.Open("/db/bank.db", vfs::kCreate | vfs::kRdWr);
  ASSERT_GE(dbfd, 0);
  int logfd = router.Open("/logs/events.log", vfs::kCreate | vfs::kRdWr);
  ASSERT_GE(logfd, 0);
  const std::string db_rec(512, 'd');
  const std::string log_rec(256, 'l');
  ASSERT_EQ(router.Pwrite(dbfd, db_rec.data(), db_rec.size(), 0),
            static_cast<ssize_t>(db_rec.size()));
  ASSERT_EQ(router.Write(logfd, log_rec.data(), log_rec.size()),
            static_cast<ssize_t>(log_rec.size()));
  EXPECT_EQ(router.Fsync(dbfd), 0);
  EXPECT_EQ(router.Fsync(logfd), 0);
  std::string back(db_rec.size(), 0);
  ASSERT_EQ(router.Pread(dbfd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, db_rec);

  // Cross-tenant visibility goes through the router's path routing, not shared fds.
  vfs::StatBuf st{};
  EXPECT_EQ(router.Stat("/logs/events.log", &st), 0);
  EXPECT_EQ(st.size, log_rec.size());
  EXPECT_EQ(router.Stat("/nobody/x", &st), -ENOENT);
  EXPECT_EQ(router.Open("/nobody/x", vfs::kCreate | vfs::kRdWr), -ENOENT);

  // Renames stay inside a namespace; tenants are separate mounts.
  EXPECT_EQ(router.Rename("/db/bank.db", "/logs/bank.db"), -EXDEV);
  EXPECT_EQ(router.Rename("/db/bank.db", "/db/bank2.db"), 0);
  EXPECT_EQ(router.Stat("/db/bank2.db", &st), 0);

  // Unmount invalidates that tenant's router fds and namespace, nothing else.
  ASSERT_EQ(router.Unmount("logs"), 0);
  EXPECT_EQ(router.Unmount("logs"), -ENOENT);
  EXPECT_EQ(router.Fsync(logfd), -EBADF);
  char c = 0;
  EXPECT_EQ(router.Read(logfd, &c, 1), -EBADF);
  EXPECT_EQ(router.Stat("/logs/events.log", &st), -ENOENT);
  EXPECT_EQ(router.TenantCount(), 1u);
  ASSERT_EQ(router.Pread(dbfd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, db_rec);
  EXPECT_EQ(router.Close(dbfd), 0);
  EXPECT_EQ(router.Close(dbfd), -EBADF);
}

// The headline resource claim: 64 mounted namespaces, each with the async
// publisher and replenisher enabled, share exactly three service threads.
TEST_F(TenantTest, SixtyFourTenantsThreeServiceThreads) {
  TenantRouter router(&kfs_);
  ASSERT_EQ(router.ServiceThreads(), 3);

  constexpr int kTenants = 64;
  const std::string payload(16 * 1024, 'x');
  std::vector<int> fds;
  for (int i = 0; i < kTenants; ++i) {
    const std::string id = "t" + std::to_string(i);
    Mode mode = (i % 2 == 0) ? Mode::kPosix : Mode::kStrict;
    ASSERT_EQ(router.Mount(id, SmallTenant(mode, /*async=*/true)), 0) << id;
    int fd = router.Open("/" + id + "/data", vfs::kCreate | vfs::kRdWr);
    ASSERT_GE(fd, 0) << id;
    ASSERT_EQ(router.Pwrite(fd, payload.data(), payload.size(), 0),
              static_cast<ssize_t>(payload.size()));
    ASSERT_EQ(router.Fsync(fd), 0);
    fds.push_back(fd);
  }
  EXPECT_EQ(router.TenantCount(), static_cast<size_t>(kTenants));
  EXPECT_EQ(router.ServiceThreads(), 3);

  router.DrainAllPublishes();
  std::string back(payload.size(), 0);
  for (int i = 0; i < kTenants; ++i) {
    ASSERT_EQ(router.Pread(fds[i], back.data(), back.size(), 0),
              static_cast<ssize_t>(back.size()));
    EXPECT_EQ(back, payload) << "tenant t" << i;
    EXPECT_EQ(router.Close(fds[i]), 0);
  }
  for (int i = 0; i < kTenants; ++i) {
    ASSERT_EQ(router.Unmount("t" + std::to_string(i)), 0);
  }
  EXPECT_EQ(router.TenantCount(), 0u);
}

// A throttled tenant's journal-commit pacing lands in the contention ledger under
// its own name; the unthrottled neighbor pays nothing. Gauges follow mount state.
TEST_F(TenantTest, JournalCreditsThrottleAndAttribute) {
  TenantRouter router(&kfs_);
  TenantOptions noisy = SmallTenant(Mode::kStrict, /*async=*/false);
  noisy.journal_credits_per_sec = 1000.0;  // One forced commit per simulated ms.
  noisy.journal_credit_burst = 1.0;
  ASSERT_EQ(router.Mount("noisy", noisy), 0);
  ASSERT_EQ(router.Mount("quiet", SmallTenant(Mode::kPosix, /*async=*/false)), 0);

  EXPECT_TRUE(GaugeExists("tenant.noisy.journal_credits"));
  EXPECT_TRUE(GaugeExists("tenant.noisy.publish_queue_depth"));

  int nfd = router.Open("/noisy/storm", vfs::kCreate | vfs::kRdWr);
  int qfd = router.Open("/quiet/app.log", vfs::kCreate | vfs::kRdWr);
  ASSERT_GE(nfd, 0);
  ASSERT_GE(qfd, 0);
  const std::string rec(4096, 's');
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(router.Write(nfd, rec.data(), rec.size()),
              static_cast<ssize_t>(rec.size()));
    ASSERT_EQ(router.Fsync(nfd), 0);  // Metadata-dirty append: forces a commit.
    ASSERT_EQ(router.Write(qfd, rec.data(), rec.size()),
              static_cast<ssize_t>(rec.size()));
    ASSERT_EQ(router.Fsync(qfd), 0);
  }
  uint64_t throttled_ns = 0;
  EXPECT_TRUE(LedgerHas("tenant.noisy.journal_throttle", &throttled_ns));
  EXPECT_GT(throttled_ns, 0u);
  EXPECT_FALSE(LedgerHas("tenant.quiet.journal_throttle"));

  EXPECT_EQ(router.Close(nfd), 0);
  EXPECT_EQ(router.Close(qfd), 0);
  ASSERT_EQ(router.Unmount("noisy"), 0);
  EXPECT_FALSE(GaugeExists("tenant.noisy.journal_credits"));
  EXPECT_TRUE(GaugeExists("tenant.quiet.staging_tokens"));
}

// Staging-file admission pacing: a tenant that churns through staging files waits
// on its own tenant.<id>.staging_throttle, visible in the ledger.
TEST_F(TenantTest, StagingTokensThrottleAndAttribute) {
  TenantRouter router(&kfs_);
  TenantOptions hog = SmallTenant(Mode::kPosix, /*async=*/false);
  hog.fs.replenish_thread = false;  // Inline refill: the foreground pays the toll.
  hog.staging_tokens_per_sec = 10.0;  // One staging file per 100 simulated ms.
  hog.staging_token_burst = 1.0;
  ASSERT_EQ(router.Mount("hog", hog), 0);

  int fd = router.Open("/hog/big", vfs::kCreate | vfs::kRdWr);
  ASSERT_GE(fd, 0);
  const std::string chunk(256 * 1024, 'h');
  for (int i = 0; i < 24; ++i) {  // 6 MiB through 1 MiB staging files.
    ASSERT_EQ(router.Write(fd, chunk.data(), chunk.size()),
              static_cast<ssize_t>(chunk.size()));
  }
  uint64_t throttled_ns = 0;
  EXPECT_TRUE(LedgerHas("tenant.hog.staging_throttle", &throttled_ns));
  EXPECT_GT(throttled_ns, 0u);
  EXPECT_EQ(router.Close(fd), 0);
}

// Router fd/path tables under tenant churn: mounts, unmounts, opens, writes, and
// stats race on the shared maps (the TSan cell for this PR). Two long-lived
// tenants keep traffic flowing through the shared pools the whole time.
TEST_F(TenantTest, ChurnRacesOpensAndWrites) {
  TenantRouter router(&kfs_);
  ASSERT_EQ(router.Mount("w0", SmallTenant(Mode::kPosix, /*async=*/true)), 0);
  ASSERT_EQ(router.Mount("w1", SmallTenant(Mode::kStrict, /*async=*/true)), 0);

  constexpr int kRounds = 60;
  std::atomic<bool> stop{false};
  std::atomic<int> churn_mounts{0};

  // Steady writers on the long-lived tenants.
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      const std::string path = "/w" + std::to_string(w) + "/stream";
      const std::string rec(1024, static_cast<char>('a' + w));
      while (!stop.load(std::memory_order_acquire)) {
        int fd = router.Open(path, vfs::kCreate | vfs::kRdWr | vfs::kAppend);
        if (fd < 0) {
          continue;
        }
        router.Write(fd, rec.data(), rec.size());
        router.Fsync(fd);
        router.Close(fd);
      }
    });
  }
  // Churn: mount, use, unmount a transient tenant, repeatedly.
  std::thread churner([&] {
    for (int i = 0; i < kRounds; ++i) {
      const std::string id = "churn" + std::to_string(i % 4);
      if (router.Mount(id, SmallTenant(Mode::kPosix, /*async=*/true)) != 0) {
        continue;
      }
      churn_mounts.fetch_add(1, std::memory_order_relaxed);
      int fd = router.Open("/" + id + "/f", vfs::kCreate | vfs::kRdWr);
      if (fd >= 0) {
        const std::string rec(2048, 'c');
        router.Write(fd, rec.data(), rec.size());
        router.Fsync(fd);
        router.Close(fd);
      }
      ASSERT_EQ(router.Unmount(id), 0);
    }
  });
  // Prober: stats and opens against namespaces that appear and disappear.
  std::thread prober([&] {
    vfs::StatBuf st{};
    while (!stop.load(std::memory_order_acquire)) {
      for (int i = 0; i < 4; ++i) {
        const std::string path = "/churn" + std::to_string(i) + "/f";
        int rc = router.Stat(path, &st);
        ASSERT_TRUE(rc == 0 || rc == -ENOENT) << rc;
        int fd = router.Open(path, vfs::kRdOnly);
        if (fd >= 0) {
          char c = 0;
          ssize_t r = router.Pread(fd, &c, 1, 0);
          ASSERT_TRUE(r >= 0 || r == -EBADF) << r;
          router.Close(fd);
        } else {
          ASSERT_TRUE(fd == -ENOENT || fd == -EBADF) << fd;
        }
      }
    }
  });

  churner.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : writers) {
    t.join();
  }
  prober.join();

  EXPECT_GT(churn_mounts.load(), 0);
  EXPECT_EQ(router.TenantCount(), 2u);
  router.DrainAllPublishes();
  vfs::StatBuf st{};
  ASSERT_EQ(router.Stat("/w0/stream", &st), 0);
  EXPECT_GT(st.size, 0u);
  ASSERT_EQ(router.Stat("/w1/stream", &st), 0);
  EXPECT_GT(st.size, 0u);
}

}  // namespace
