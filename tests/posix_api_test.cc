// Tests for the POSIX facade: flag translation, errno conventions, iovec calls,
// openat/unlinkat resolution, and the stdio-style buffered streams — the surface the
// paper's LD_PRELOAD shim exposes to unmodified applications.
#include <gtest/gtest.h>

#include <fcntl.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/posix_api.h"

namespace {

using common::kMiB;

class PosixApiTest : public ::testing::Test {
 protected:
  PosixApiTest() : dev_(&ctx_, 512 * kMiB), kfs_(&dev_) {
    splitfs::Options o;
    o.num_staging_files = 2;
    o.staging_file_bytes = 8 * kMiB;
    fs_ = std::make_unique<splitfs::SplitFs>(&kfs_, o);
    posix_ = std::make_unique<splitfs::Posix>(fs_.get());
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
  std::unique_ptr<splitfs::SplitFs> fs_;
  std::unique_ptr<splitfs::Posix> posix_;
};

TEST_F(PosixApiTest, OpenFlagsTranslate) {
  int fd = posix_->open("/f", O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(posix_->close(fd), 0);
  // O_EXCL on existing file fails with EEXIST.
  errno = 0;
  EXPECT_EQ(posix_->open("/f", O_RDWR | O_CREAT | O_EXCL), -1);
  EXPECT_EQ(errno, EEXIST);
  // Missing file without O_CREAT: ENOENT.
  errno = 0;
  EXPECT_EQ(posix_->open("/missing", O_RDONLY), -1);
  EXPECT_EQ(errno, ENOENT);
}

TEST_F(PosixApiTest, PwritePreadRoundTrip) {
  int fd = posix_->open("/rw", O_RDWR | O_CREAT);
  std::string msg = "the quick brown fox";
  EXPECT_EQ(posix_->pwrite(fd, msg.data(), msg.size(), 0),
            static_cast<ssize_t>(msg.size()));
  std::vector<char> buf(msg.size());
  EXPECT_EQ(posix_->pread64(fd, buf.data(), buf.size(), 0),
            static_cast<ssize_t>(buf.size()));
  EXPECT_EQ(std::string(buf.begin(), buf.end()), msg);
  EXPECT_EQ(posix_->fsync(fd), 0);
  posix_->close(fd);
}

TEST_F(PosixApiTest, AppendFlagAndLseek) {
  int fd = posix_->open("/app", O_WRONLY | O_CREAT | O_APPEND);
  posix_->write(fd, "aaa", 3);
  posix_->write(fd, "bbb", 3);
  posix_->close(fd);
  fd = posix_->open("/app", O_RDONLY);
  EXPECT_EQ(posix_->lseek(fd, -3, SEEK_END), 3);
  char buf[4] = {};
  posix_->read(fd, buf, 3);
  EXPECT_STREQ(buf, "bbb");
  EXPECT_EQ(posix_->lseek(fd, 0, SEEK_CUR), 6);
  posix_->close(fd);
}

TEST_F(PosixApiTest, ReadvWritevGatherScatter) {
  int fd = posix_->open("/vec", O_RDWR | O_CREAT);
  char a[] = "hello ";
  char b[] = "vector world";
  struct iovec out[2] = {{a, 6}, {b, 12}};
  EXPECT_EQ(posix_->writev(fd, out, 2), 18);
  posix_->lseek(fd, 0, SEEK_SET);
  char x[6], y[12];
  struct iovec in[2] = {{x, 6}, {y, 12}};
  EXPECT_EQ(posix_->readv(fd, in, 2), 18);
  EXPECT_EQ(0, std::memcmp(x, "hello ", 6));
  EXPECT_EQ(0, std::memcmp(y, "vector world", 12));
  posix_->close(fd);
}

TEST_F(PosixApiTest, StatFamilies) {
  int fd = posix_->open("/st", O_RDWR | O_CREAT);
  posix_->pwrite(fd, "12345", 5, 0);
  struct stat st;
  ASSERT_EQ(posix_->fstat(fd, &st), 0);
  EXPECT_EQ(st.st_size, 5);
  EXPECT_TRUE(S_ISREG(st.st_mode));
  ASSERT_EQ(posix_->stat("/st", &st), 0);
  EXPECT_EQ(st.st_size, 5);
  EXPECT_EQ(posix_->access("/st", R_OK), 0);
  errno = 0;
  EXPECT_EQ(posix_->access("/nope", R_OK), -1);
  EXPECT_EQ(errno, ENOENT);
  posix_->close(fd);
  posix_->mkdir("/adir", 0755);
  ASSERT_EQ(posix_->stat("/adir", &st), 0);
  EXPECT_TRUE(S_ISDIR(st.st_mode));
}

TEST_F(PosixApiTest, OpenatResolvesRelativeToDirFd) {
  ASSERT_EQ(posix_->mkdir("/sub", 0755), 0);
  int dfd = posix_->open("/sub", O_RDONLY | O_DIRECTORY);
  ASSERT_GE(dfd, 0);
  int fd = posix_->openat(dfd, "child", O_RDWR | O_CREAT);
  ASSERT_GE(fd, 0);
  posix_->write(fd, "x", 1);
  posix_->close(fd);
  struct stat st;
  EXPECT_EQ(posix_->stat("/sub/child", &st), 0);
  EXPECT_EQ(posix_->unlinkat(dfd, "child", 0), 0);
  EXPECT_EQ(posix_->stat("/sub/child", &st), -1);
  EXPECT_EQ(posix_->close(dfd), 0);
  EXPECT_EQ(posix_->unlinkat(AT_FDCWD, "/sub", AT_REMOVEDIR), 0);
}

TEST_F(PosixApiTest, FtruncateAndFallocate) {
  int fd = posix_->open("/sz", O_RDWR | O_CREAT);
  posix_->pwrite(fd, "123456789", 9, 0);
  EXPECT_EQ(posix_->ftruncate64(fd, 4), 0);
  struct stat st;
  posix_->fstat(fd, &st);
  EXPECT_EQ(st.st_size, 4);
  EXPECT_EQ(posix_->posix_fallocate(fd, 0, 64 * 1024), 0);
  posix_->fstat(fd, &st);
  EXPECT_EQ(st.st_size, 64 * 1024);
  posix_->close(fd);
}

TEST_F(PosixApiTest, DupSharesOffsetLikePosix) {
  int fd = posix_->open("/d", O_RDWR | O_CREAT);
  posix_->write(fd, "abcd", 4);
  posix_->lseek(fd, 0, SEEK_SET);
  int fd2 = posix_->dup(fd);
  char c;
  posix_->read(fd, &c, 1);
  EXPECT_EQ(c, 'a');
  posix_->read(fd2, &c, 1);
  EXPECT_EQ(c, 'b');
  posix_->close(fd);
  posix_->close(fd2);
}

TEST_F(PosixApiTest, StdioStreamsBufferAndFlush) {
  splitfs::PosixFile* f = posix_->fopen("/stream.txt", "w");
  ASSERT_NE(f, nullptr);
  std::string line = "line of text\n";
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(posix_->fwrite(line.data(), 1, line.size(), f), line.size());
  }
  // Buffered: the file may be shorter than the logical position until fflush.
  EXPECT_EQ(posix_->ftell(f), static_cast<long>(100 * line.size()));
  ASSERT_EQ(posix_->fflush(f), 0);
  struct stat st;
  posix_->stat("/stream.txt", &st);
  EXPECT_EQ(st.st_size, static_cast<off_t>(100 * line.size()));
  ASSERT_EQ(posix_->fclose(f), 0);

  f = posix_->fopen("/stream.txt", "r");
  ASSERT_NE(f, nullptr);
  std::vector<char> buf(line.size());
  ASSERT_EQ(posix_->fread(buf.data(), 1, buf.size(), f), buf.size());
  EXPECT_EQ(std::string(buf.begin(), buf.end()), line);
  ASSERT_EQ(posix_->fseek(f, -static_cast<long>(line.size()), SEEK_END), 0);
  ASSERT_EQ(posix_->fread(buf.data(), 1, buf.size(), f), buf.size());
  EXPECT_EQ(std::string(buf.begin(), buf.end()), line);
  posix_->fclose(f);
}

TEST_F(PosixApiTest, StdioAppendMode) {
  splitfs::PosixFile* f = posix_->fopen("/log", "a");
  ASSERT_NE(f, nullptr);
  posix_->fwrite("one", 1, 3, f);
  posix_->fclose(f);
  f = posix_->fopen("/log", "a");
  posix_->fwrite("two", 1, 3, f);
  posix_->fclose(f);
  struct stat st;
  posix_->stat("/log", &st);
  EXPECT_EQ(st.st_size, 6);
  f = posix_->fopen("/log", "r");
  char buf[7] = {};
  posix_->fread(buf, 1, 6, f);
  EXPECT_STREQ(buf, "onetwo");
  posix_->fclose(f);
}

TEST_F(PosixApiTest, RenameUnlinkErrnoConventions) {
  errno = 0;
  EXPECT_EQ(posix_->unlink("/ghost"), -1);
  EXPECT_EQ(errno, ENOENT);
  int fd = posix_->open("/r1", O_RDWR | O_CREAT);
  posix_->close(fd);
  EXPECT_EQ(posix_->rename("/r1", "/r2"), 0);
  struct stat st;
  EXPECT_EQ(posix_->stat("/r2", &st), 0);
  EXPECT_EQ(posix_->unlink("/r2"), 0);
}

}  // namespace
