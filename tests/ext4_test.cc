// Functional, relink, and crash-consistency tests for the ext4-DAX model (K-Split).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/ext4/ext4_dax.h"
#include "src/ext4/fsck.h"
#include "src/pmem/device.h"

namespace {

using common::kBlockSize;

class Ext4Test : public ::testing::Test {
 protected:
  Ext4Test() : dev_(&ctx_, 256 * common::kMiB), fs_(&dev_) {}

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 7);
    }
    return v;
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax fs_;
};

TEST_F(Ext4Test, CreateWriteReadBack) {
  int fd = fs_.Open("/a", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  auto data = Pattern(10000, 1);
  EXPECT_EQ(fs_.Pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  std::vector<uint8_t> back(data.size());
  EXPECT_EQ(fs_.Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(data, back);
  vfs::StatBuf st;
  EXPECT_EQ(fs_.Fstat(fd, &st), 0);
  EXPECT_EQ(st.size, data.size());
  EXPECT_EQ(fs_.Close(fd), 0);
}

TEST_F(Ext4Test, OpenErrors) {
  EXPECT_EQ(fs_.Open("/missing", vfs::kRdWr), -ENOENT);
  EXPECT_EQ(fs_.Open("relative", vfs::kRdWr | vfs::kCreate), -ENOENT);
  int fd = fs_.Open("/x", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fs_.Open("/x", vfs::kRdWr | vfs::kCreate | vfs::kExcl), -EEXIST);
  EXPECT_EQ(fs_.Close(fd), 0);
  EXPECT_EQ(fs_.Close(fd), -EBADF);
  EXPECT_EQ(fs_.Pread(fd, nullptr, 0, 0), -EBADF);
}

TEST_F(Ext4Test, CursorReadWriteAndLseek) {
  int fd = fs_.Open("/c", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(fs_.Write(fd, "hello", 5), 5);
  EXPECT_EQ(fs_.Write(fd, "world", 5), 5);
  EXPECT_EQ(fs_.Lseek(fd, 0, vfs::Whence::kSet), 0);
  char buf[11] = {};
  EXPECT_EQ(fs_.Read(fd, buf, 10), 10);
  EXPECT_STREQ(buf, "helloworld");
  EXPECT_EQ(fs_.Lseek(fd, -5, vfs::Whence::kEnd), 5);
  EXPECT_EQ(fs_.Read(fd, buf, 5), 5);
  buf[5] = '\0';
  EXPECT_STREQ(buf, "world");
  fs_.Close(fd);
}

TEST_F(Ext4Test, DupSharesOffset) {
  int fd = fs_.Open("/d", vfs::kRdWr | vfs::kCreate);
  fs_.Write(fd, "abcdef", 6);
  fs_.Lseek(fd, 0, vfs::Whence::kSet);
  int fd2 = fs_.Dup(fd);
  ASSERT_GE(fd2, 0);
  char c;
  fs_.Read(fd, &c, 1);
  EXPECT_EQ(c, 'a');
  fs_.Read(fd2, &c, 1);
  EXPECT_EQ(c, 'b');  // The dup'ed descriptor shares the cursor (§3.5).
  fs_.Close(fd);
  fs_.Close(fd2);
}

TEST_F(Ext4Test, AppendFlagWritesAtEof) {
  int fd = fs_.Open("/e", vfs::kRdWr | vfs::kCreate);
  fs_.Write(fd, "1234", 4);
  int fd2 = fs_.Open("/e", vfs::kRdWr | vfs::kAppend);
  fs_.Write(fd2, "56", 2);
  vfs::StatBuf st;
  fs_.Stat("/e", &st);
  EXPECT_EQ(st.size, 6u);
  fs_.Close(fd);
  fs_.Close(fd2);
}

TEST_F(Ext4Test, SparseFileReadsZeroes) {
  int fd = fs_.Open("/sparse", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(100, 9);
  fs_.Pwrite(fd, data.data(), 100, 100 * kBlockSize);
  std::vector<uint8_t> back(100, 0xFF);
  EXPECT_EQ(fs_.Pread(fd, back.data(), 100, 50 * kBlockSize), 100);
  for (uint8_t b : back) {
    EXPECT_EQ(b, 0);
  }
  vfs::StatBuf st;
  fs_.Fstat(fd, &st);
  EXPECT_EQ(st.size, 100 * kBlockSize + 100);
  EXPECT_LT(st.blocks, 100u);  // Sparse: far fewer blocks than the size implies.
  fs_.Close(fd);
}

TEST_F(Ext4Test, DirectoryOperations) {
  EXPECT_EQ(fs_.Mkdir("/dir"), 0);
  EXPECT_EQ(fs_.Mkdir("/dir"), -EEXIST);
  EXPECT_EQ(fs_.Mkdir("/dir/sub"), 0);
  int fd = fs_.Open("/dir/sub/f", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  fs_.Close(fd);
  std::vector<std::string> names;
  EXPECT_EQ(fs_.ReadDir("/dir", &names), 0);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "sub");
  EXPECT_EQ(fs_.Rmdir("/dir/sub"), -ENOTEMPTY);
  EXPECT_EQ(fs_.Unlink("/dir/sub/f"), 0);
  EXPECT_EQ(fs_.Rmdir("/dir/sub"), 0);
  EXPECT_EQ(fs_.Rmdir("/dir"), 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs_.Stat("/dir", &st), -ENOENT);
}

TEST_F(Ext4Test, RenameReplacesDestination) {
  int fd = fs_.Open("/from", vfs::kRdWr | vfs::kCreate);
  fs_.Write(fd, "AAA", 3);
  fs_.Close(fd);
  fd = fs_.Open("/to", vfs::kRdWr | vfs::kCreate);
  fs_.Write(fd, "BBBBBB", 6);
  fs_.Close(fd);
  EXPECT_EQ(fs_.Rename("/from", "/to"), 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs_.Stat("/from", &st), -ENOENT);
  EXPECT_EQ(fs_.Stat("/to", &st), 0);
  EXPECT_EQ(st.size, 3u);
}

TEST_F(Ext4Test, RenameToSelfIsNoOp) {
  // Regression test (found by the cross-FS fuzzer): rename(A, A) must not treat the
  // file as displacing itself and free a live inode.
  int fd = fs_.Open("/same", vfs::kRdWr | vfs::kCreate);
  fs_.Write(fd, "data", 4);
  fs_.Close(fd);
  EXPECT_EQ(fs_.Rename("/same", "/same"), 0);
  EXPECT_EQ(fs_.Fsync(fs_.Open("/same", vfs::kRdWr)), 0);  // Commit; must not UAF.
  vfs::StatBuf st;
  ASSERT_EQ(fs_.Stat("/same", &st), 0);
  EXPECT_EQ(st.size, 4u);
}

TEST_F(Ext4Test, UnlinkWhileOpenDefersFree) {
  int fd = fs_.Open("/open", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(8192, 3);
  fs_.Pwrite(fd, data.data(), data.size(), 0);
  uint64_t free_before = fs_.FreeBlocks();
  EXPECT_EQ(fs_.Unlink("/open"), 0);
  fs_.Fsync(fd);  // Commit the unlink transaction.
  // Still readable through the open descriptor (orphan semantics).
  std::vector<uint8_t> back(data.size());
  EXPECT_EQ(fs_.Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
  EXPECT_EQ(fs_.FreeBlocks(), free_before);  // Blocks not yet reclaimed.
  fs_.Close(fd);
  // The orphan free is journaled: it takes effect at the next commit (so a crash
  // that rolls the unlink back never resurrects a dirent to a freed inode).
  int scratch = fs_.Open("/scratch", vfs::kRdWr | vfs::kCreate);
  fs_.Fsync(scratch);
  fs_.Close(scratch);
  EXPECT_GT(fs_.FreeBlocks(), free_before);  // Reclaimed at commit after last close.
}

TEST_F(Ext4Test, TruncateFreesAndZeroExtends) {
  int fd = fs_.Open("/t", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(3 * kBlockSize, 5);
  fs_.Pwrite(fd, data.data(), data.size(), 0);
  EXPECT_EQ(fs_.Ftruncate(fd, kBlockSize), 0);
  vfs::StatBuf st;
  fs_.Fstat(fd, &st);
  EXPECT_EQ(st.size, kBlockSize);
  EXPECT_EQ(fs_.Ftruncate(fd, 2 * kBlockSize), 0);
  std::vector<uint8_t> back(kBlockSize);
  EXPECT_EQ(fs_.Pread(fd, back.data(), kBlockSize, kBlockSize),
            static_cast<ssize_t>(kBlockSize));
  for (uint8_t b : back) {
    EXPECT_EQ(b, 0);  // Grown region reads as zeroes.
  }
  fs_.Close(fd);
}

TEST_F(Ext4Test, FallocateKeepSizeAllocatesWithoutGrowing) {
  int fd = fs_.Open("/fa", vfs::kRdWr | vfs::kCreate);
  EXPECT_EQ(fs_.Fallocate(fd, 0, 10 * kBlockSize, /*keep_size=*/true), 0);
  vfs::StatBuf st;
  fs_.Fstat(fd, &st);
  EXPECT_EQ(st.size, 0u);
  EXPECT_EQ(st.blocks, 10u);
  fs_.Close(fd);
}

TEST_F(Ext4Test, DaxMapExposesStablePhysicalRanges) {
  int fd = fs_.Open("/m", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(2 * kBlockSize, 7);
  fs_.Pwrite(fd, data.data(), data.size(), 0);
  std::vector<ext4sim::Ext4Dax::DaxMapping> maps;
  ASSERT_EQ(fs_.DaxMap(fd, 0, 2 * kBlockSize, &maps), 0);
  ASSERT_FALSE(maps.empty());
  // Reading the device at the mapped offset sees the file contents: DAX semantics.
  std::vector<uint8_t> back(64);
  dev_.Load(maps[0].dev_off, back.data(), 64, true, sim::PmReadKind::kMetadata);
  EXPECT_EQ(0, std::memcmp(back.data(), data.data(), 64));
  fs_.Close(fd);
}

// --- Relink (the paper's new primitive) --------------------------------------------------

class RelinkTest : public Ext4Test {
 protected:
  void SetUp() override {
    src_fd_ = fs_.Open("/staging", vfs::kRdWr | vfs::kCreate);
    dst_fd_ = fs_.Open("/target", vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(src_fd_, 0);
    ASSERT_GE(dst_fd_, 0);
  }
  int src_fd_ = -1, dst_fd_ = -1;
};

TEST_F(RelinkTest, MovesBlocksWithoutDataCopy) {
  auto staged = Pattern(4 * kBlockSize, 11);
  fs_.Pwrite(src_fd_, staged.data(), staged.size(), 0);
  uint64_t data_bytes_before = ctx_.stats.data_bytes();

  ASSERT_EQ(fs_.SwapExtentsForRelink(src_fd_, 0, dst_fd_, 0, 4 * kBlockSize,
                                     /*new_dst_size=*/4 * kBlockSize),
            0);
  // Metadata-only: no additional user-data bytes were written by the relink.
  EXPECT_EQ(ctx_.stats.data_bytes(), data_bytes_before);
  EXPECT_EQ(ctx_.stats.relinks(), 1u);

  std::vector<uint8_t> back(staged.size());
  EXPECT_EQ(fs_.Pread(dst_fd_, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, staged);

  // The source range is now a hole.
  vfs::StatBuf st;
  fs_.Fstat(src_fd_, &st);
  EXPECT_EQ(st.blocks, 0u);
}

TEST_F(RelinkTest, AppendViaRelinkExtendsSize) {
  auto initial = Pattern(2 * kBlockSize, 1);
  fs_.Pwrite(dst_fd_, initial.data(), initial.size(), 0);
  auto staged = Pattern(kBlockSize, 2);
  fs_.Pwrite(src_fd_, staged.data(), staged.size(), 0);

  uint64_t logical_end = 2 * kBlockSize + 1000;  // Unaligned true size.
  ASSERT_EQ(fs_.SwapExtentsForRelink(src_fd_, 0, dst_fd_, 2 * kBlockSize, kBlockSize,
                                     /*new_dst_size=*/logical_end),
            0);
  vfs::StatBuf st;
  fs_.Fstat(dst_fd_, &st);
  EXPECT_EQ(st.size, logical_end);
  std::vector<uint8_t> back(1000);
  EXPECT_EQ(fs_.Pread(dst_fd_, back.data(), 1000, 2 * kBlockSize), 1000);
  EXPECT_EQ(0, std::memcmp(back.data(), staged.data(), 1000));
}

TEST_F(RelinkTest, ReplacesAndFreesDestinationBlocks) {
  auto old = Pattern(kBlockSize, 3);
  fs_.Pwrite(dst_fd_, old.data(), old.size(), 0);
  auto fresh = Pattern(kBlockSize, 4);
  fs_.Pwrite(src_fd_, fresh.data(), fresh.size(), 0);
  uint64_t free_before = fs_.FreeBlocks();

  ASSERT_EQ(fs_.SwapExtentsForRelink(src_fd_, 0, dst_fd_, 0, kBlockSize, kBlockSize), 0);
  EXPECT_EQ(fs_.FreeBlocks(), free_before + 1);  // Displaced block deallocated.

  std::vector<uint8_t> back(kBlockSize);
  fs_.Pread(dst_fd_, back.data(), kBlockSize, 0);
  EXPECT_EQ(0, std::memcmp(back.data(), fresh.data(), kBlockSize));
}

TEST_F(RelinkTest, RejectsMisalignedAndHoles) {
  auto data = Pattern(kBlockSize, 5);
  fs_.Pwrite(src_fd_, data.data(), data.size(), 0);
  EXPECT_EQ(fs_.SwapExtentsForRelink(src_fd_, 100, dst_fd_, 0, kBlockSize, 0), -EINVAL);
  EXPECT_EQ(fs_.SwapExtentsForRelink(src_fd_, 0, dst_fd_, 100, kBlockSize, 0), -EINVAL);
  // Source hole (already relinked / never written): -EINVAL, which makes replay
  // idempotent.
  EXPECT_EQ(fs_.SwapExtentsForRelink(src_fd_, 8 * kBlockSize, dst_fd_, 0, kBlockSize, 0),
            -EINVAL);
}

TEST_F(RelinkTest, PreservesDaxMappingsOfMovedBlocks) {
  auto staged = Pattern(2 * kBlockSize, 6);
  fs_.Pwrite(src_fd_, staged.data(), staged.size(), 0);
  std::vector<ext4sim::Ext4Dax::DaxMapping> before;
  ASSERT_EQ(fs_.DaxMap(src_fd_, 0, 2 * kBlockSize, &before), 0);
  ASSERT_FALSE(before.empty());

  ASSERT_EQ(fs_.SwapExtentsForRelink(src_fd_, 0, dst_fd_, 0, 2 * kBlockSize,
                                     2 * kBlockSize),
            0);
  // The physical blocks did not move: the destination's mapping points at the same
  // device offsets the staging mapping did (this is what keeps U-Split's mmaps valid).
  std::vector<ext4sim::Ext4Dax::DaxMapping> after;
  ASSERT_EQ(fs_.DaxMap(dst_fd_, 0, 2 * kBlockSize, &after), 0);
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0].dev_off, before[0].dev_off);
}

// --- Crash consistency ---------------------------------------------------------------------

class Ext4CrashTest : public Ext4Test {
 protected:
  Ext4CrashTest() { dev_.EnableCrashTracking(true); }
};

TEST_F(Ext4CrashTest, UncommittedCreateRollsBack) {
  int fd = fs_.Open("/victim", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  dev_.Crash();
  ASSERT_EQ(fs_.Recover(), 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs_.Stat("/victim", &st), -ENOENT);
}

TEST_F(Ext4CrashTest, CommittedCreateSurvives) {
  int fd = fs_.Open("/kept", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(fs_.Fsync(fd), 0);
  dev_.Crash();
  ASSERT_EQ(fs_.Recover(), 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs_.Stat("/kept", &st), 0);
}

TEST_F(Ext4CrashTest, UnsyncedAppendLosesSizeNotIntegrity) {
  int fd = fs_.Open("/grow", vfs::kRdWr | vfs::kCreate);
  fs_.Fsync(fd);  // File exists durably, size 0.
  auto data = Pattern(kBlockSize, 8);
  fs_.Pwrite(fd, data.data(), data.size(), 0);
  dev_.Crash();
  ASSERT_EQ(fs_.Recover(), 0);
  vfs::StatBuf st;
  ASSERT_EQ(fs_.Stat("/grow", &st), 0);
  EXPECT_EQ(st.size, 0u);     // Size update was in the uncommitted transaction.
  EXPECT_EQ(st.blocks, 0u);   // Allocation rolled back too: no leaked blocks.
}

TEST_F(Ext4CrashTest, SyncedAppendSurvivesWithData) {
  int fd = fs_.Open("/grow2", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(kBlockSize, 9);
  fs_.Pwrite(fd, data.data(), data.size(), 0);
  ASSERT_EQ(fs_.Fsync(fd), 0);
  dev_.Crash();
  ASSERT_EQ(fs_.Recover(), 0);
  int fd2 = fs_.Open("/grow2", vfs::kRdWr);
  ASSERT_GE(fd2, 0);
  std::vector<uint8_t> back(data.size());
  EXPECT_EQ(fs_.Pread(fd2, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
}

TEST_F(Ext4CrashTest, UncommittedUnlinkResurrects) {
  int fd = fs_.Open("/phoenix", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(kBlockSize, 10);
  fs_.Pwrite(fd, data.data(), data.size(), 0);
  fs_.Fsync(fd);
  fs_.Close(fd);
  ASSERT_EQ(fs_.Unlink("/phoenix"), 0);
  dev_.Crash();  // Unlink never committed.
  ASSERT_EQ(fs_.Recover(), 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs_.Stat("/phoenix", &st), 0);
  EXPECT_EQ(st.size, data.size());
}

TEST_F(Ext4CrashTest, RelinkIsImmediatelyDurable) {
  int src = fs_.Open("/s", vfs::kRdWr | vfs::kCreate);
  int dst = fs_.Open("/d", vfs::kRdWr | vfs::kCreate);
  fs_.Fsync(src);
  fs_.Fsync(dst);
  auto data = Pattern(kBlockSize, 12);
  fs_.Pwrite(src, data.data(), data.size(), 0);
  dev_.Fence();
  ASSERT_EQ(fs_.SwapExtentsForRelink(src, 0, dst, 0, kBlockSize, kBlockSize), 0);
  dev_.Crash();  // No fsync after the relink: the ioctl's own commit must suffice.
  ASSERT_EQ(fs_.Recover(), 0);
  vfs::StatBuf st;
  ASSERT_EQ(fs_.Stat("/d", &st), 0);
  EXPECT_EQ(st.size, kBlockSize);
  int fd2 = fs_.Open("/d", vfs::kRdWr);
  std::vector<uint8_t> back(kBlockSize);
  EXPECT_EQ(fs_.Pread(fd2, back.data(), back.size(), 0),
            static_cast<ssize_t>(kBlockSize));
  EXPECT_EQ(back, data);
}

TEST_F(Ext4Test, FsckCleanAfterMixedWorkload) {
  fs_.Mkdir("/dir");
  for (int i = 0; i < 20; ++i) {
    int fd = fs_.Open("/dir/f" + std::to_string(i), vfs::kRdWr | vfs::kCreate);
    auto data = Pattern(1000 * (i + 1), static_cast<uint8_t>(i));
    fs_.Pwrite(fd, data.data(), data.size(), 0);
    if (i % 3 == 0) {
      fs_.Fsync(fd);
    }
    fs_.Close(fd);
  }
  fs_.Unlink("/dir/f3");
  fs_.Rename("/dir/f4", "/dir/f5");  // Displaces f5.
  int tfd = fs_.Open("/dir/f6", vfs::kRdWr);
  fs_.Ftruncate(tfd, 100);
  fs_.Fsync(tfd);
  fs_.Close(tfd);
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  for (const auto& p : r.problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(r.clean);
}

TEST_F(Ext4CrashTest, FsckCleanAfterCrashRecovery) {
  common::Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 8; ++i) {
      int fd = fs_.Open("/c" + std::to_string(i), vfs::kRdWr | vfs::kCreate);
      auto data = Pattern(512 + rng.Uniform(8192), static_cast<uint8_t>(i));
      fs_.Pwrite(fd, data.data(), data.size(), rng.OneIn(2) ? 0 : rng.Uniform(4096));
      if (rng.OneIn(2)) {
        fs_.Fsync(fd);
      }
      fs_.Close(fd);
      if (rng.OneIn(5)) {
        fs_.Unlink("/c" + std::to_string(i));
      }
    }
    common::Rng torn(rng.Next());
    dev_.Crash(&torn);
    ASSERT_EQ(fs_.Recover(), 0);
    ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
    for (const auto& p : r.problems) {
      ADD_FAILURE() << "round " << round << ": " << p;
    }
    ASSERT_TRUE(r.clean);
  }
}

// --- Directory nlink accounting (the '..' link) -------------------------------------------

TEST_F(Ext4Test, DirectoryNlinkAccounting) {
  vfs::StatBuf st;
  ASSERT_EQ(fs_.Stat("/", &st), 0);
  EXPECT_EQ(st.nlink, 2u);  // '.' + self-parent.
  ASSERT_EQ(fs_.Mkdir("/a"), 0);
  ASSERT_EQ(fs_.Stat("/", &st), 0);
  EXPECT_EQ(st.nlink, 3u);  // + /a's '..'.
  ASSERT_EQ(fs_.Mkdir("/a/b"), 0);
  ASSERT_EQ(fs_.Mkdir("/a/c"), 0);
  ASSERT_EQ(fs_.Stat("/a", &st), 0);
  EXPECT_EQ(st.nlink, 4u);  // 2 + two subdirs.
  // Files do not contribute a '..'.
  int fd = fs_.Open("/a/f", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  fs_.Close(fd);
  ASSERT_EQ(fs_.Stat("/a", &st), 0);
  EXPECT_EQ(st.nlink, 4u);
  ASSERT_EQ(fs_.Stat("/a/f", &st), 0);
  EXPECT_EQ(st.nlink, 1u);
  ASSERT_EQ(fs_.Rmdir("/a/c"), 0);
  ASSERT_EQ(fs_.Stat("/a", &st), 0);
  EXPECT_EQ(st.nlink, 3u);
  // Moving a directory between parents moves its '..' link.
  ASSERT_EQ(fs_.Mkdir("/d"), 0);
  ASSERT_EQ(fs_.Rename("/a/b", "/d/b"), 0);
  ASSERT_EQ(fs_.Stat("/a", &st), 0);
  EXPECT_EQ(st.nlink, 2u);
  ASSERT_EQ(fs_.Stat("/d", &st), 0);
  EXPECT_EQ(st.nlink, 3u);
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);  // fsck verifies the invariant.
  for (const auto& p : r.problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(r.clean);
}

TEST_F(Ext4CrashTest, NlinkRollsBackWithNamespaceOps) {
  ASSERT_EQ(fs_.Mkdir("/p"), 0);
  int fd = fs_.Open("/p/anchor", vfs::kRdWr | vfs::kCreate);
  ASSERT_EQ(fs_.Fsync(fd), 0);  // /p (nlink 2) and the anchor are durable.
  fs_.Close(fd);
  ASSERT_EQ(fs_.Mkdir("/p/q"), 0);  // Uncommitted: bumps /p to 3.
  dev_.Crash();
  ASSERT_EQ(fs_.Recover(), 0);
  vfs::StatBuf st;
  ASSERT_EQ(fs_.Stat("/p", &st), 0);
  EXPECT_EQ(st.nlink, 2u);  // The rollback restored the parent link count.
  EXPECT_EQ(fs_.Stat("/p/q", &st), -ENOENT);
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  for (const auto& p : r.problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(r.clean);
}

// --- Rename semantics: cycles, no-ops, directory destinations -----------------------------

TEST_F(Ext4Test, RenameIntoOwnSubtreeRejected) {
  ASSERT_EQ(fs_.Mkdir("/a"), 0);
  ASSERT_EQ(fs_.Mkdir("/a/b"), 0);
  ASSERT_EQ(fs_.Mkdir("/a/b/c"), 0);
  // Moving a directory into its own subtree would disconnect it from the root.
  EXPECT_EQ(fs_.Rename("/a", "/a/b/d"), -EINVAL);
  EXPECT_EQ(fs_.Rename("/a", "/a/d"), -EINVAL);
  EXPECT_EQ(fs_.Rename("/a/b", "/a/b/c/x"), -EINVAL);
  // Sibling/upward moves stay legal; same-path rename is a no-op.
  EXPECT_EQ(fs_.Rename("/a/b/c", "/c"), 0);
  EXPECT_EQ(fs_.Rename("/a", "/a"), 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs_.Stat("/a/b", &st), 0);
  EXPECT_EQ(fs_.Stat("/c", &st), 0);
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  for (const auto& p : r.problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(r.clean);
}

TEST_F(Ext4Test, RenameDirectoryOverDestination) {
  ASSERT_EQ(fs_.Mkdir("/src"), 0);
  ASSERT_EQ(fs_.Mkdir("/empty"), 0);
  ASSERT_EQ(fs_.Mkdir("/full"), 0);
  ASSERT_EQ(fs_.Mkdir("/full/sub"), 0);
  int fd = fs_.Open("/file", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  fs_.Close(fd);
  EXPECT_EQ(fs_.Rename("/src", "/full"), -ENOTEMPTY);  // Dir victim must be empty.
  EXPECT_EQ(fs_.Rename("/src", "/file"), -ENOTDIR);    // Dir cannot replace a file.
  EXPECT_EQ(fs_.Rename("/file", "/empty"), -EISDIR);   // File cannot replace a dir.
  EXPECT_EQ(fs_.Rename("/src", "/empty"), 0);          // Empty dir victim replaced.
  vfs::StatBuf st;
  ASSERT_EQ(fs_.Stat("/empty", &st), 0);
  EXPECT_EQ(st.type, vfs::FileType::kDirectory);
  EXPECT_EQ(fs_.Stat("/src", &st), -ENOENT);
  ASSERT_EQ(fs_.Stat("/", &st), 0);
  EXPECT_EQ(st.nlink, 4u);  // 2 + {empty, full}: the displaced dir's '..' is gone.
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  for (const auto& p : r.problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(r.clean);
}

// --- Rename-over-open-destination: deferred frees are keyed by ino ------------------------

TEST_F(Ext4Test, DisplacedVictimReopenedByInoIsNotFreedEarly) {
  auto data = Pattern(kBlockSize, 21);
  int dfd = fs_.Open("/dst", vfs::kRdWr | vfs::kCreate);
  fs_.Pwrite(dfd, data.data(), data.size(), 0);
  fs_.Fsync(dfd);
  vfs::Ino victim_ino = fs_.InoOf(dfd);
  fs_.Close(dfd);
  int sfd = fs_.Open("/src", vfs::kRdWr | vfs::kCreate);
  fs_.Fsync(sfd);
  fs_.Close(sfd);

  // The rename displaces /dst with no opens: a deferred free is registered.
  ASSERT_EQ(fs_.Rename("/src", "/dst"), 0);
  // Reopen the victim by inode number before the transaction commits — exactly what
  // U-Split's op-log recovery does when a log entry names a displaced file.
  int vfd = fs_.OpenByIno(victim_ino, vfs::kRdWr);
  ASSERT_GE(vfd, 0);
  fs_.CommitJournal(/*fsync_barrier=*/false);
  // The reclamation must have backed off: the orphan stays readable until close.
  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(fs_.Pread(vfd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
  uint64_t free_before_close = fs_.FreeBlocks();
  EXPECT_EQ(fs_.Close(vfd), 0);
  fs_.CommitJournal(/*fsync_barrier=*/false);
  EXPECT_GT(fs_.FreeBlocks(), free_before_close);  // Freed exactly at last close.
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  for (const auto& p : r.problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(r.clean);
}

TEST_F(Ext4Test, RenameVictimDeferredFreeRunsExactlyOnce) {
  // Two reclamations can end up queued for one victim (rename registers one, the
  // close after an OpenByIno reopen registers another). Keyed by ino and re-checked
  // at commit, the second is a no-op; the old raw-pointer capture double-freed.
  auto data = Pattern(2 * kBlockSize, 22);
  int dfd = fs_.Open("/dst2", vfs::kRdWr | vfs::kCreate);
  fs_.Pwrite(dfd, data.data(), data.size(), 0);
  fs_.Fsync(dfd);
  vfs::Ino victim_ino = fs_.InoOf(dfd);
  fs_.Close(dfd);
  int sfd = fs_.Open("/src2", vfs::kRdWr | vfs::kCreate);
  fs_.Fsync(sfd);
  fs_.Close(sfd);
  uint64_t free_start = fs_.FreeBlocks();

  ASSERT_EQ(fs_.Rename("/src2", "/dst2"), 0);       // Reclamation #1 queued.
  int vfd = fs_.OpenByIno(victim_ino, vfs::kRdWr);
  ASSERT_GE(vfd, 0);
  EXPECT_EQ(fs_.Close(vfd), 0);                     // Reclamation #2 queued.
  fs_.CommitJournal(/*fsync_barrier=*/false);       // Both run; one must free.
  EXPECT_EQ(fs_.FreeBlocks(), free_start + 2);      // The victim's blocks, once.
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  for (const auto& p : r.problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(r.clean);
}

// --- Sequential-read detection staleness --------------------------------------------------

class SeqDetectTest : public Ext4Test {
 protected:
  // Simulated cost of a one-block pread at `off`.
  uint64_t PreadCost(int fd, uint64_t off) {
    std::vector<uint8_t> buf(kBlockSize);
    uint64_t t0 = ctx_.clock.Now();
    EXPECT_EQ(fs_.Pread(fd, buf.data(), kBlockSize, off),
              static_cast<ssize_t>(kBlockSize));
    return ctx_.clock.Now() - t0;
  }
};

TEST_F(SeqDetectTest, InvalidatedByTruncate) {
  int fd = fs_.Open("/seq", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  auto data = Pattern(8 * kBlockSize, 23);
  ASSERT_EQ(fs_.Pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  // Baselines: a read continuing at last_read_end streams; any other offset pays
  // the random-access latency class first.
  std::vector<uint8_t> buf(kBlockSize);
  ASSERT_EQ(fs_.Pread(fd, buf.data(), kBlockSize, 0), static_cast<ssize_t>(kBlockSize));
  uint64_t cost_seq = PreadCost(fd, kBlockSize);       // Continues at 1 block.
  uint64_t cost_rand = PreadCost(fd, 5 * kBlockSize);  // Jump.
  ASSERT_LT(cost_seq, cost_rand);

  // Prime the continuation point at 2 blocks, then shrink the file below it and
  // re-populate with fallocate (mapped blocks, no write covering the point).
  ASSERT_EQ(fs_.Pread(fd, buf.data(), kBlockSize, kBlockSize),
            static_cast<ssize_t>(kBlockSize));
  ASSERT_EQ(fs_.Ftruncate(fd, 0), 0);
  ASSERT_EQ(fs_.Fallocate(fd, 0, 8 * kBlockSize, /*keep_size=*/false), 0);
  // The continuation point refers to removed bytes: the read must pay the random
  // latency class (before the fix it streamed at the sequential class).
  EXPECT_EQ(PreadCost(fd, 2 * kBlockSize), cost_rand);
  fs_.Close(fd);
}

TEST_F(SeqDetectTest, InvalidatedByOverlappingPwrite) {
  int fd = fs_.Open("/seq2", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  auto data = Pattern(8 * kBlockSize, 24);
  ASSERT_EQ(fs_.Pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  std::vector<uint8_t> buf(kBlockSize);
  ASSERT_EQ(fs_.Pread(fd, buf.data(), kBlockSize, 0), static_cast<ssize_t>(kBlockSize));
  uint64_t cost_seq = PreadCost(fd, kBlockSize);       // lre now 2 blocks.
  uint64_t cost_rand = PreadCost(fd, 5 * kBlockSize);  // lre now 6 blocks.
  ASSERT_LT(cost_seq, cost_rand);

  // Re-prime the continuation point at 2 blocks, then overwrite the bytes at it.
  ASSERT_EQ(fs_.Pread(fd, buf.data(), kBlockSize, kBlockSize),
            static_cast<ssize_t>(kBlockSize));
  ASSERT_EQ(fs_.Pwrite(fd, data.data(), kBlockSize, 2 * kBlockSize),
            static_cast<ssize_t>(kBlockSize));
  // Reading the freshly-overwritten bytes is not a media-stream continuation.
  EXPECT_EQ(PreadCost(fd, 2 * kBlockSize), cost_rand);
  // A write that does not cover the continuation point preserves streaming.
  ASSERT_EQ(fs_.Pread(fd, buf.data(), kBlockSize, 6 * kBlockSize),
            static_cast<ssize_t>(kBlockSize));  // lre = 7 blocks.
  ASSERT_EQ(fs_.Pwrite(fd, data.data(), kBlockSize, 0),
            static_cast<ssize_t>(kBlockSize));  // Far below lre.
  EXPECT_EQ(PreadCost(fd, 7 * kBlockSize), cost_seq);
  fs_.Close(fd);
}

// --- Orphan list ---------------------------------------------------------------------------

TEST_F(Ext4Test, LiveOrphanIsListedAndFsckClean) {
  int fd = fs_.Open("/liveorph", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  auto data = Pattern(2 * kBlockSize, 3);
  ASSERT_EQ(fs_.Pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(fs_.Fsync(fd), 0);
  ASSERT_EQ(fs_.Unlink("/liveorph"), 0);
  fs_.CommitJournal(/*fsync_barrier=*/false);
  // Unlinked-but-open: on the orphan list, and fsck accepts the configuration.
  EXPECT_EQ(fs_.OrphanCount(), 1u);
  {
    ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
    for (const auto& p : r.problems) {
      ADD_FAILURE() << p;
    }
  }
  // The surviving descriptor still reads the data (POSIX unlink semantics).
  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(fs_.Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
  // Last close + commit reclaims and drains the list.
  ASSERT_EQ(fs_.Close(fd), 0);
  fs_.CommitJournal(/*fsync_barrier=*/false);
  EXPECT_EQ(fs_.OrphanCount(), 0u);
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  EXPECT_TRUE(r.clean);
}

TEST_F(Ext4CrashTest, OrphanListReclaimsUnlinkedOpenInodeAtRecovery) {
  // The unlink commits while the file is still open; the crash beats the last
  // close, so the deferred commit-time reclamation never runs. Mount-time orphan
  // replay must free the blocks instead of leaking them until the next unlink.
  uint64_t free0 = fs_.FreeBlocks();
  int fd = fs_.Open("/orph", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  auto data = Pattern(4 * kBlockSize, 5);
  ASSERT_EQ(fs_.Pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(fs_.Fsync(fd), 0);
  ASSERT_EQ(fs_.Unlink("/orph"), 0);
  fs_.CommitJournal(/*fsync_barrier=*/false);
  ASSERT_EQ(fs_.OrphanCount(), 1u);
  ASSERT_LT(fs_.FreeBlocks(), free0);  // Blocks still held by the orphan.
  dev_.Crash();
  ASSERT_EQ(fs_.Recover(), 0);
  EXPECT_EQ(fs_.OrphanCount(), 0u);   // The list drained.
  EXPECT_EQ(fs_.FreeBlocks(), free0);  // Blocks reclaimed.
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  for (const auto& p : r.problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(r.clean);
}

TEST_F(Ext4CrashTest, RolledBackReclamationIsReplayedFromOrphanList) {
  // The leak this satellite closes: unlink and last close both happen, but the
  // close's deferred reclamation rides a transaction that dies at the crash. The
  // rollback discards the commit action — only the orphan list remembers the inode.
  uint64_t free0 = fs_.FreeBlocks();
  int fd = fs_.Open("/leak", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  auto data = Pattern(3 * kBlockSize, 6);
  ASSERT_EQ(fs_.Pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(fs_.Fsync(fd), 0);
  ASSERT_EQ(fs_.Unlink("/leak"), 0);
  fs_.CommitJournal(/*fsync_barrier=*/false);  // Unlink durable; file open.
  ASSERT_EQ(fs_.Close(fd), 0);  // Registers the deferred free in the running txn.
  dev_.Crash();                 // That transaction never commits.
  ASSERT_EQ(fs_.Recover(), 0);
  EXPECT_EQ(fs_.OrphanCount(), 0u);
  EXPECT_EQ(fs_.FreeBlocks(), free0) << "orphan blocks leaked";
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  EXPECT_TRUE(r.clean);
}

TEST_F(Ext4CrashTest, UncommittedUnlinkLeavesNoOrphanEntry) {
  // The unlink itself rolls back: the journal undo must also take the inode off
  // the orphan list, or recovery's replay would reclaim a resurrected file.
  int fd = fs_.Open("/resur", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  auto data = Pattern(kBlockSize, 7);
  ASSERT_EQ(fs_.Pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(fs_.Fsync(fd), 0);
  ASSERT_EQ(fs_.Close(fd), 0);
  fs_.CommitJournal(/*fsync_barrier=*/false);
  ASSERT_EQ(fs_.Unlink("/resur"), 0);  // Uncommitted.
  dev_.Crash();
  ASSERT_EQ(fs_.Recover(), 0);
  EXPECT_EQ(fs_.OrphanCount(), 0u);
  vfs::StatBuf st;
  EXPECT_EQ(fs_.Stat("/resur", &st), 0);  // Resurrected, not reclaimed.
  EXPECT_EQ(st.size, kBlockSize);
  ext4sim::FsckReport r = ext4sim::RunFsck(&fs_);
  EXPECT_TRUE(r.clean);
}

// --- Cost-model sanity: the paper's Table 1 ext4-DAX append anchor ------------------------

TEST_F(Ext4Test, AppendCostMatchesTable1) {
  int fd = fs_.Open("/bench", vfs::kRdWr | vfs::kCreate);
  auto block = Pattern(kBlockSize, 1);
  // Warm up the first append (cold inode), then measure steady state.
  fs_.Pwrite(fd, block.data(), kBlockSize, 0);
  uint64_t t0 = ctx_.clock.Now();
  const int kOps = 1000;
  for (int i = 1; i <= kOps; ++i) {
    fs_.Pwrite(fd, block.data(), kBlockSize, static_cast<uint64_t>(i) * kBlockSize);
  }
  double per_op = static_cast<double>(ctx_.clock.Now() - t0) / kOps;
  // Paper: 9002 ns per 4 KB append on ext4 DAX. Model tolerance: 15%.
  EXPECT_NEAR(per_op, 9002.0, 0.15 * 9002.0);
  fs_.Close(fd);
}

}  // namespace
