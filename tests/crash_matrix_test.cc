// Crash-state matrix: store/fence-granular failure injection with recovery oracles
// across SplitFS (all three consistency modes) and the NOVA/PMFS/Strata baselines.
//
// Each crash state is one (workload, crash point, drain fate) triple: a fresh world
// re-executes the deterministic workload, power is cut at the exact store/fence, the
// un-fenced stores are dropped / subset-drained / torn, recovery remounts, and the
// oracles of src/crash/oracles.h validate durability, atomicity, integrity, and
// post-recovery service.
//
// Tests whose names contain "Smoke" form the quick subset (ctest -L crash_smoke);
// the full matrix is labeled crash_matrix so fast iterations can exclude it
// (ctest -LE crash_matrix).
#include <gtest/gtest.h>

#include <cstring>

#include "src/crash/crash_runner.h"
#include "src/ext4/fsck.h"
#include "src/tenant/tenant_router.h"

namespace {

using crash::CrashRunner;
using crash::FatePolicy;
using crash::Guarantees;
using crash::MatrixStats;
using crash::RunnerConfig;

constexpr uint64_t kSeed = 20190727;  // Fixed: the whole matrix is reproducible.

Guarantees GuaranteesFor(splitfs::Mode mode) {
  switch (mode) {
    case splitfs::Mode::kPosix:
      return Guarantees::SplitFsPosix();
    case splitfs::Mode::kSync:
      return Guarantees::SplitFsSync();
    case splitfs::Mode::kStrict:
      return Guarantees::SplitFsStrict();
  }
  return Guarantees::SplitFsPosix();
}

void ExpectClean(const MatrixStats& stats, const std::string& what) {
  EXPECT_EQ(stats.oracle_failures, 0u) << what << ": " << stats.oracle_failures
                                       << " failing crash states";
  for (const std::string& f : stats.failures) {
    ADD_FAILURE() << what << ": " << f;
  }
}

TEST(CrashMatrixSmoke, StrictAppendSurvivesInjection) {
  RunnerConfig cfg;
  cfg.seed = kSeed;
  cfg.max_fence_points = 4;
  cfg.max_store_points = 2;
  cfg.fates = {FatePolicy::kDropAll, FatePolicy::kTorn};
  CrashRunner runner(crash::SplitFsWorldFactory(splitfs::Mode::kStrict),
                     crash::MakeAppendScript(kSeed), Guarantees::SplitFsStrict(), cfg);
  MatrixStats stats = runner.Run();
  EXPECT_GE(stats.crash_states, 8u);
  ExpectClean(stats, "strict/append");
}

TEST(CrashMatrixSmoke, DeterministicUnderFixedSeed) {
  RunnerConfig cfg;
  cfg.seed = kSeed;
  cfg.max_fence_points = 3;
  cfg.max_store_points = 1;
  cfg.fates = {FatePolicy::kSubset, FatePolicy::kTorn};
  auto run = [&cfg] {
    CrashRunner runner(crash::SplitFsWorldFactory(splitfs::Mode::kStrict),
                       crash::MakeOverwriteScript(kSeed),
                       Guarantees::SplitFsStrict(), cfg);
    return runner.Run();
  };
  MatrixStats a = run();
  MatrixStats b = run();
  EXPECT_EQ(a.crash_states, b.crash_states);
  EXPECT_EQ(a.oracle_failures, b.oracle_failures);
  EXPECT_EQ(a.fingerprint, b.fingerprint);  // Byte-identical recovered states.
  EXPECT_EQ(a.failures, b.failures);
}

// The acceptance matrix: >= 100 distinct crash states across
// {posix, sync, strict} x {append, overwrite, rename} on SplitFS.
TEST(CrashMatrix, SplitFsModesTimesWorkloads) {
  uint64_t total_states = 0;
  for (splitfs::Mode mode :
       {splitfs::Mode::kPosix, splitfs::Mode::kSync, splitfs::Mode::kStrict}) {
    for (const auto& script : crash::AllScripts(kSeed)) {
      RunnerConfig cfg;
      cfg.seed = kSeed;
      CrashRunner runner(crash::SplitFsWorldFactory(mode), script,
                         GuaranteesFor(mode), cfg);
      MatrixStats stats = runner.Run();
      total_states += stats.crash_states;
      ExpectClean(stats, std::string(splitfs::ModeName(mode)) + "/" + script.name);
      EXPECT_GT(stats.fence_points, 0u);
      EXPECT_GT(stats.store_points, 0u);
    }
  }
  EXPECT_GE(total_states, 100u);
}

// Regression: op-log replay must honor logged truncate ordering. The core relink of
// a published entry skips on holes, but its partial-block head copy would happily
// re-write bytes a later truncate removed — recovery must not resurrect them.
TEST(CrashMatrixSmoke, TruncateAfterStagedAppendsDoesNotResurrect) {
  auto w = crash::SplitFsWorldFactory(splitfs::Mode::kStrict)();
  w->dev->EnableCrashTracking(true);
  int fd = w->fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(w->fs->Fsync(fd), 0);
  std::vector<uint8_t> a(9000, 0x77);
  ASSERT_EQ(w->fs->Pwrite(fd, a.data(), a.size(), 0), static_cast<ssize_t>(a.size()));
  ASSERT_EQ(w->fs->Close(fd), 0);  // Publishes.
  fd = w->fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> b(5000, 0x33);
  ASSERT_EQ(w->fs->Pwrite(fd, b.data(), b.size(), 9000),
            static_cast<ssize_t>(b.size()));
  ASSERT_GE(w->fs->Open("/f", vfs::kRdWr | vfs::kTrunc), 0);  // Discards everything.
  w->dev->Crash();
  ASSERT_EQ(w->RecoverAll(), 0);
  vfs::StatBuf sb;
  ASSERT_EQ(w->fs->Stat("/f", &sb), 0);
  EXPECT_EQ(sb.size, 0u) << "replay resurrected truncated data";
}

// --- Async relink column ----------------------------------------------------------------
// The same mode × workload sweep with Options::async_relink on (deterministic inline
// publisher): fsync fences intent records before the publish runs, so injected
// crashes land between the intent fence and the relinks/commit. Recovery must land
// on the staged contents (intent replay re-relinks them) or the published contents —
// never a torn mix — and fsck must stay clean.

TEST(CrashMatrixSmoke, AsyncRelinkIntentWindowSurvivesInjection) {
  RunnerConfig cfg;
  cfg.seed = kSeed;
  cfg.max_fence_points = 4;
  cfg.max_store_points = 2;
  cfg.fates = {FatePolicy::kDropAll, FatePolicy::kTorn};
  CrashRunner runner(crash::SplitFsWorldFactory(splitfs::Mode::kPosix,
                                                /*async_relink=*/true),
                     crash::MakeAppendScript(kSeed), Guarantees::SplitFsPosix(), cfg);
  MatrixStats stats = runner.Run();
  EXPECT_GE(stats.crash_states, 8u);
  ExpectClean(stats, "posix+async/append");
}

TEST(CrashMatrixSmoke, AsyncRelinkDeterministicUnderFixedSeed) {
  RunnerConfig cfg;
  cfg.seed = kSeed;
  cfg.max_fence_points = 3;
  cfg.max_store_points = 1;
  cfg.fates = {FatePolicy::kSubset, FatePolicy::kTorn};
  auto run = [&cfg] {
    CrashRunner runner(crash::SplitFsWorldFactory(splitfs::Mode::kSync,
                                                  /*async_relink=*/true),
                       crash::MakeAppendScript(kSeed), Guarantees::SplitFsSync(), cfg);
    return runner.Run();
  };
  MatrixStats a = run();
  MatrixStats b = run();
  EXPECT_EQ(a.crash_states, b.crash_states);
  EXPECT_EQ(a.fingerprint, b.fingerprint);  // Inline publisher: byte-identical.
  EXPECT_EQ(a.failures, b.failures);
}

// The async contract end-to-end: with the real publisher parked, fsync returns once
// the relink intents are fenced; a crash before any relink ran must still recover
// the acknowledged bytes — recovery replays the intents. (Also the regression test
// for the recovery-scan bug that silently discarded intent records: op codes above
// kRenameTo failed structural validation, so exactly the entries that make an
// acknowledged-but-unpublished fsync recoverable were dropped.)
TEST(CrashMatrixSmoke, AckedButUnpublishedFsyncRecoversFromIntents) {
  for (splitfs::Mode mode : {splitfs::Mode::kPosix, splitfs::Mode::kStrict}) {
    auto w = std::make_unique<crash::World>();
    w->dev = std::make_unique<pmem::Device>(&w->ctx, 64 * common::kMiB);
    w->kfs = std::make_unique<ext4sim::Ext4Dax>(w->dev.get());
    splitfs::Options o;
    o.mode = mode;
    o.num_staging_files = 2;
    o.staging_file_bytes = 4 * common::kMiB;
    o.oplog_bytes = 256 * common::kKiB;
    o.async_relink = true;
    o.publisher_thread = true;
    auto sfs = std::make_unique<splitfs::SplitFs>(w->kfs.get(), o);
    splitfs::SplitFs* fs = sfs.get();
    w->fs = std::move(sfs);
    w->dev->EnableCrashTracking(true);
    fs->set_publisher_paused_for_test(true);  // Intents fence; relinks never run.

    int fd = fs->Open("/acked", vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(fs->Fsync(fd), 0);  // The create itself is durable.
    std::vector<uint8_t> data(6000);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(0x11 ^ (i * 13));
    }
    ASSERT_EQ(fs->Pwrite(fd, data.data(), data.size(), 0),
              static_cast<ssize_t>(data.size()));
    ASSERT_EQ(fs->Fsync(fd), 0);  // Returns at the intent fence; publish queued.
    EXPECT_EQ(fs->Relinks(), 0u) << "publisher ran despite the pause";

    w->dev->Crash();
    ASSERT_EQ(w->RecoverAll(), 0);
    fs->set_publisher_paused_for_test(false);

    int rfd = fs->Open("/acked", vfs::kRdOnly);
    ASSERT_GE(rfd, 0);
    vfs::StatBuf st;
    ASSERT_EQ(fs->Fstat(rfd, &st), 0);
    EXPECT_EQ(st.size, data.size()) << splitfs::ModeName(mode);
    std::vector<uint8_t> back(data.size());
    ASSERT_EQ(fs->Pread(rfd, back.data(), back.size(), 0),
              static_cast<ssize_t>(back.size()));
    EXPECT_EQ(back, data) << splitfs::ModeName(mode);
    fs->Close(rfd);
    ext4sim::FsckReport fsck = ext4sim::RunFsck(w->kfs.get());
    for (const auto& p : fsck.problems) {
      ADD_FAILURE() << splitfs::ModeName(mode) << ": " << p;
    }
  }
}

TEST(CrashMatrix, AsyncRelinkModesTimesWorkloads) {
  uint64_t total_states = 0;
  for (splitfs::Mode mode :
       {splitfs::Mode::kPosix, splitfs::Mode::kSync, splitfs::Mode::kStrict}) {
    for (const auto& script : crash::AllScripts(kSeed)) {
      RunnerConfig cfg;
      cfg.seed = kSeed;
      CrashRunner runner(crash::SplitFsWorldFactory(mode, /*async_relink=*/true),
                         script, GuaranteesFor(mode), cfg);
      MatrixStats stats = runner.Run();
      total_states += stats.crash_states;
      ExpectClean(stats, std::string(splitfs::ModeName(mode)) + "+async/" + script.name);
    }
  }
  EXPECT_GE(total_states, 100u);
}

// --- jbd2 commit pipeline column --------------------------------------------------------
// The pipelined journal creates a crash state the script-driven matrix cannot reach
// single-threaded: power cut mid-writeout of T_n while T_{n+1} already holds live
// mutations. The mid-writeout hook stages exactly that window — T_n creates and
// fills a file, T_{n+1} (populated after the seal, barrier released) renames it and
// creates another — and the injector cuts the writeout at a chosen journal store.
// Recovery must roll back the running T_{n+1} first, then the unsealed T_n, newest
// mutation first; rolling back T_n first would leave T_{n+1}'s rename undo pointing
// a resurrected dirent at an erased inode, which fsck flags as a dangling entry.

struct PipelineCrashOutcome {
  bool crashed = false;
  bool fsck_clean = false;
  uint64_t free_blocks = 0;
  uint64_t fingerprint = 0;  // Stat results of every involved path.
};

PipelineCrashOutcome RunPipelineCrashState(uint64_t store_ordinal,
                                           crash::FatePolicy fate, uint64_t seed) {
  PipelineCrashOutcome out;
  sim::Context ctx;
  pmem::Device dev(&ctx, 64 * common::kMiB);
  ext4sim::Ext4Dax fs(&dev);
  dev.EnableCrashTracking(true);

  // Durable base state.
  int base = fs.Open("/base", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(base >= 0);
  std::vector<uint8_t> img(6000, 0x5C);
  SPLITFS_CHECK(fs.Pwrite(base, img.data(), img.size(), 0) ==
                static_cast<ssize_t>(img.size()));
  SPLITFS_CHECK(fs.CommitJournal(/*fsync_barrier=*/false) == 0);
  dev.Fence();

  // T_n: create + fill a file; its commit is the writeout the crash will cut.
  int fd = fs.Open("/tn", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  std::vector<uint8_t> data(5000, 0xA1);
  SPLITFS_CHECK(fs.Pwrite(fd, data.data(), data.size(), 0) ==
                static_cast<ssize_t>(data.size()));

  crash::CrashInjector injector(
      {crash::CrashPoint::Trigger::kAfterStore, store_ordinal});
  fs.journal_for_test()->SetMidWriteoutHookForTest([&fs, &dev, &injector] {
    // T_{n+1}: mutations stacked on T_n's state while its writeout is in flight.
    SPLITFS_CHECK(fs.Rename("/tn", "/tn-renamed") == 0);
    SPLITFS_CHECK(fs.Open("/tq", vfs::kRdWr | vfs::kCreate) >= 0);
    dev.SetObserver(&injector);  // Arm: ordinal 0 = first writeout store.
  });
  try {
    fs.CommitJournal(/*fsync_barrier=*/true);
  } catch (const crash::CrashSignal&) {
    out.crashed = true;
  }
  dev.SetObserver(nullptr);
  fs.journal_for_test()->SetMidWriteoutHookForTest(nullptr);
  if (!out.crashed) {
    return out;
  }

  dev.CrashWith(crash::MakeFate(fate, seed | 1));
  SPLITFS_CHECK(fs.Recover() == 0);

  ext4sim::FsckReport fsck = ext4sim::RunFsck(&fs);
  out.fsck_clean = fsck.clean;
  for (const std::string& p : fsck.problems) {
    ADD_FAILURE() << "pipeline crash @ store#" << store_ordinal << "/"
                  << crash::FateName(fate) << ": " << p;
  }
  out.free_blocks = fs.FreeBlocks();
  uint64_t fp = 14695981039346656037ull;
  auto mix = [&fp](uint64_t v) { fp = (fp ^ v) * 1099511628211ull; };
  for (const char* p : {"/base", "/tn", "/tn-renamed", "/tq"}) {
    vfs::StatBuf sb;
    mix(fs.Stat(p, &sb) == 0 ? sb.size : ~0ull);
  }
  out.fingerprint = fp;

  // Neither transaction reached its commit record: everything above the base
  // state rolls back, under every drain fate.
  vfs::StatBuf sb;
  EXPECT_EQ(fs.Stat("/base", &sb), 0);
  EXPECT_EQ(sb.size, 6000u);
  EXPECT_EQ(fs.Stat("/tn", &sb), -ENOENT);
  EXPECT_EQ(fs.Stat("/tn-renamed", &sb), -ENOENT);
  EXPECT_EQ(fs.Stat("/tq", &sb), -ENOENT);
  return out;
}

TEST(CrashMatrixSmoke, MidWriteoutCrashWithLiveNextTransactionRecovers) {
  int crashed_states = 0;
  // T_n dirtied >= 3 metadata blocks, so the writeout spans >= 5 journal stores;
  // sweep the cut across the descriptor, metadata, and commit-record stores.
  for (uint64_t store = 0; store < 4; ++store) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      PipelineCrashOutcome out = RunPipelineCrashState(store, fate, kSeed);
      ASSERT_TRUE(out.crashed) << "store#" << store << " never reached";
      EXPECT_TRUE(out.fsck_clean);
      ++crashed_states;
    }
  }
  EXPECT_EQ(crashed_states, 8);
}

TEST(CrashMatrixSmoke, MidWriteoutCrashStatesAreDeterministic) {
  for (crash::FatePolicy fate : {FatePolicy::kSubset, FatePolicy::kTorn}) {
    PipelineCrashOutcome a = RunPipelineCrashState(2, fate, kSeed);
    PipelineCrashOutcome b = RunPipelineCrashState(2, fate, kSeed);
    ASSERT_TRUE(a.crashed);
    ASSERT_TRUE(b.crashed);
    EXPECT_EQ(a.fsck_clean, b.fsck_clean);
    EXPECT_EQ(a.free_blocks, b.free_blocks);
    EXPECT_EQ(a.fingerprint, b.fingerprint);  // Byte-identical recovered states.
  }
}

// --- Coalescing / checkpoint / batched-publish column -----------------------------------
// The journal's commit-coalescing window, modeled checkpoint writeback, and the
// batched publisher each open crash states the earlier columns cannot reach: a
// power cut inside the delay window (two operations merged into ONE tid must roll
// back together), a cut inside checkpoint writeback (only the journal region is
// being rewritten — committed state must survive untouched), and a cut inside a
// batched publish (N files' relinks riding one commit that never lands).

struct CoalesceCrashOutcome {
  bool crashed = false;
  bool fsck_clean = false;
  uint64_t fingerprint = 0;
};

CoalesceCrashOutcome RunCoalescingWindowCrashState(uint64_t store_ordinal,
                                                   crash::FatePolicy fate,
                                                   uint64_t seed) {
  CoalesceCrashOutcome out;
  sim::Context ctx;
  pmem::Device dev(&ctx, 64 * common::kMiB);
  ext4sim::Ext4Options eo;
  eo.commit_interval_ns = 200'000;  // Every commit holds a window open.
  ext4sim::Ext4Dax fs(&dev, eo);
  dev.EnableCrashTracking(true);

  int base = fs.Open("/base", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(base >= 0);
  std::vector<uint8_t> img(6000, 0x5C);
  SPLITFS_CHECK(fs.Pwrite(base, img.data(), img.size(), 0) ==
                static_cast<ssize_t>(img.size()));
  SPLITFS_CHECK(fs.CommitJournal(/*fsync_barrier=*/false) == 0);
  dev.Fence();

  // First operation: create + fill, then fsync. The fsync's committer opens the
  // coalescing window; the hook below runs inside it, with the running
  // transaction still accepting handles.
  int fd = fs.Open("/wa", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  std::vector<uint8_t> data(5000, 0xB4);
  SPLITFS_CHECK(fs.Pwrite(fd, data.data(), data.size(), 0) ==
                static_cast<ssize_t>(data.size()));

  crash::CrashInjector injector(
      {crash::CrashPoint::Trigger::kAfterStore, store_ordinal});
  fs.journal_for_test()->SetCommitWindowHookForTest([&fs, &dev, &injector] {
    // Second operation lands inside the window: it joins the SAME tid the
    // committer is about to seal — the merge coalescing buys. The cut then
    // falls in that merged transaction's writeout.
    SPLITFS_CHECK(fs.Open("/wb", vfs::kRdWr | vfs::kCreate) >= 0);
    dev.SetObserver(&injector);
  });
  try {
    fs.CommitJournal(/*fsync_barrier=*/true);
  } catch (const crash::CrashSignal&) {
    out.crashed = true;
  }
  dev.SetObserver(nullptr);
  fs.journal_for_test()->SetCommitWindowHookForTest(nullptr);
  if (!out.crashed) {
    return out;
  }

  dev.CrashWith(crash::MakeFate(fate, seed | 1));
  SPLITFS_CHECK(fs.Recover() == 0);
  ext4sim::FsckReport fsck = ext4sim::RunFsck(&fs);
  out.fsck_clean = fsck.clean;
  for (const std::string& p : fsck.problems) {
    ADD_FAILURE() << "coalesce crash @ store#" << store_ordinal << "/"
                  << crash::FateName(fate) << ": " << p;
  }
  uint64_t fp = 14695981039346656037ull;
  auto mix = [&fp](uint64_t v) { fp = (fp ^ v) * 1099511628211ull; };
  for (const char* p : {"/base", "/wa", "/wb"}) {
    vfs::StatBuf sb;
    mix(fs.Stat(p, &sb) == 0 ? sb.size : ~0ull);
  }
  out.fingerprint = fp;

  // The merged tid never reached its commit record: BOTH window-mates roll back
  // together. A survivor of either would mean the merge split durability.
  vfs::StatBuf sb;
  EXPECT_EQ(fs.Stat("/base", &sb), 0);
  EXPECT_EQ(sb.size, 6000u);
  EXPECT_EQ(fs.Stat("/wa", &sb), -ENOENT);
  EXPECT_EQ(fs.Stat("/wb", &sb), -ENOENT);
  return out;
}

TEST(CrashMatrixSmoke, PowerCutInsideCoalescingWindowRollsBackMergedTids) {
  int crashed_states = 0;
  for (uint64_t store = 0; store < 3; ++store) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      CoalesceCrashOutcome out = RunCoalescingWindowCrashState(store, fate, kSeed);
      ASSERT_TRUE(out.crashed) << "store#" << store << " never reached";
      EXPECT_TRUE(out.fsck_clean);
      ++crashed_states;
    }
  }
  EXPECT_EQ(crashed_states, 6);
}

TEST(CrashMatrixSmoke, CoalescingWindowCrashStatesAreDeterministic) {
  for (crash::FatePolicy fate : {FatePolicy::kSubset, FatePolicy::kTorn}) {
    CoalesceCrashOutcome a = RunCoalescingWindowCrashState(1, fate, kSeed);
    CoalesceCrashOutcome b = RunCoalescingWindowCrashState(1, fate, kSeed);
    ASSERT_TRUE(a.crashed);
    ASSERT_TRUE(b.crashed);
    EXPECT_EQ(a.fsck_clean, b.fsck_clean);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
  }
}

CoalesceCrashOutcome RunCheckpointCrashState(uint64_t store_ordinal,
                                             crash::FatePolicy fate, uint64_t seed) {
  CoalesceCrashOutcome out;
  sim::Context ctx;
  pmem::Device dev(&ctx, 64 * common::kMiB);
  ext4sim::Ext4Options eo;
  eo.journal_blocks = 8;  // Smallest legal log: a few commits force checkpointing.
  ext4sim::Ext4Dax fs(&dev, eo);
  dev.EnableCrashTracking(true);

  // Committed base state that fills most of the tiny log.
  std::vector<uint8_t> img(3000, 0x42);
  for (int i = 0; i < 2; ++i) {
    std::string path = "/ck" + std::to_string(i);
    int fd = fs.Open(path, vfs::kRdWr | vfs::kCreate);
    SPLITFS_CHECK(fd >= 0);
    SPLITFS_CHECK(fs.Pwrite(fd, img.data(), img.size(), 0) ==
                  static_cast<ssize_t>(img.size()));
    SPLITFS_CHECK(fs.CommitJournal(/*fsync_barrier=*/false) == 0);
  }
  dev.Fence();

  // The next commit cannot fit: its committer stalls in checkpoint writeback, and
  // the hook arms the injector so the cut lands inside the writeback stores —
  // which touch ONLY the journal region, never committed home locations.
  int fd = fs.Open("/ck-tail", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  SPLITFS_CHECK(fs.Pwrite(fd, img.data(), img.size(), 0) ==
                static_cast<ssize_t>(img.size()));
  crash::CrashInjector injector(
      {crash::CrashPoint::Trigger::kAfterStore, store_ordinal});
  fs.journal_for_test()->SetCheckpointHookForTest(
      [&dev, &injector] { dev.SetObserver(&injector); });
  try {
    fs.CommitJournal(/*fsync_barrier=*/true);
  } catch (const crash::CrashSignal&) {
    out.crashed = true;
  }
  dev.SetObserver(nullptr);
  fs.journal_for_test()->SetCheckpointHookForTest(nullptr);
  if (!out.crashed) {
    return out;
  }

  dev.CrashWith(crash::MakeFate(fate, seed | 1));
  SPLITFS_CHECK(fs.Recover() == 0);
  ext4sim::FsckReport fsck = ext4sim::RunFsck(&fs);
  out.fsck_clean = fsck.clean;
  for (const std::string& p : fsck.problems) {
    ADD_FAILURE() << "checkpoint crash @ store#" << store_ordinal << "/"
                  << crash::FateName(fate) << ": " << p;
  }
  uint64_t fp = 14695981039346656037ull;
  auto mix = [&fp](uint64_t v) { fp = (fp ^ v) * 1099511628211ull; };
  for (const char* p : {"/ck0", "/ck1", "/ck-tail"}) {
    vfs::StatBuf sb;
    mix(fs.Stat(p, &sb) == 0 ? sb.size : ~0ull);
  }
  out.fingerprint = fp;

  // Checkpoint writeback rewrites the journal region only: the committed files
  // survive byte-for-byte, and the uncommitted tail transaction rolls back.
  vfs::StatBuf sb;
  EXPECT_EQ(fs.Stat("/ck0", &sb), 0);
  EXPECT_EQ(sb.size, 3000u);
  EXPECT_EQ(fs.Stat("/ck1", &sb), 0);
  EXPECT_EQ(sb.size, 3000u);
  EXPECT_EQ(fs.Stat("/ck-tail", &sb), -ENOENT);
  return out;
}

TEST(CrashMatrixSmoke, MidCheckpointWritebackCrashKeepsCommittedState) {
  int crashed_states = 0;
  for (uint64_t store = 0; store < 3; ++store) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      CoalesceCrashOutcome out = RunCheckpointCrashState(store, fate, kSeed);
      ASSERT_TRUE(out.crashed)
          << "store#" << store << ": checkpoint writeback never armed";
      EXPECT_TRUE(out.fsck_clean);
      ++crashed_states;
    }
  }
  EXPECT_EQ(crashed_states, 6);
}

TEST(CrashMatrixSmoke, MidCheckpointCrashStatesAreDeterministic) {
  for (crash::FatePolicy fate : {FatePolicy::kSubset, FatePolicy::kTorn}) {
    CoalesceCrashOutcome a = RunCheckpointCrashState(1, fate, kSeed);
    CoalesceCrashOutcome b = RunCheckpointCrashState(1, fate, kSeed);
    ASSERT_TRUE(a.crashed);
    ASSERT_TRUE(b.crashed);
    EXPECT_EQ(a.fsck_clean, b.fsck_clean);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
  }
}

// One commit covering N files: three files fsync through the intent path (publisher
// parked), then the queued batch is drained on the test thread with the injector
// armed — the cut lands somewhere in the batch's relinks or its single shared
// commit. Every file's fsync was acknowledged at its intent fence, so recovery
// must restore ALL of them, whether their relinks happened or not.
struct BatchCrashOutcome {
  bool crashed = false;
  uint64_t fingerprint = 0;
};

BatchCrashOutcome RunBatchedPublishCrashState(uint64_t store_ordinal,
                                              crash::FatePolicy fate, uint64_t seed) {
  BatchCrashOutcome out;
  auto w = std::make_unique<crash::World>();
  w->dev = std::make_unique<pmem::Device>(&w->ctx, 64 * common::kMiB);
  w->kfs = std::make_unique<ext4sim::Ext4Dax>(w->dev.get());
  splitfs::Options o;
  o.mode = splitfs::Mode::kPosix;
  o.num_staging_files = 2;
  o.staging_file_bytes = 4 * common::kMiB;
  o.oplog_bytes = 256 * common::kKiB;
  o.async_relink = true;
  o.publisher_thread = true;
  o.publish_batch = 4;
  auto sfs = std::make_unique<splitfs::SplitFs>(w->kfs.get(), o);
  splitfs::SplitFs* fs = sfs.get();
  w->fs = std::move(sfs);
  w->dev->EnableCrashTracking(true);
  fs->set_publisher_paused_for_test(true);  // The drain below runs the batch.

  auto payload = [](int file, size_t i) {
    return static_cast<uint8_t>(0x21 ^ (file * 59) ^ (i * 13));
  };
  constexpr int kFiles = 3;
  constexpr size_t kBytes = 5000;
  for (int f = 0; f < kFiles; ++f) {
    std::string path = "/bat" + std::to_string(f);
    int fd = fs->Open(path, vfs::kRdWr | vfs::kCreate);
    SPLITFS_CHECK(fd >= 0);
    std::vector<uint8_t> data(kBytes);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = payload(f, i);
    }
    SPLITFS_CHECK(fs->Pwrite(fd, data.data(), data.size(), 0) ==
                  static_cast<ssize_t>(data.size()));
    SPLITFS_CHECK(fs->Fsync(fd) == 0);  // Acked at the intent fence; queued.
  }
  SPLITFS_CHECK(fs->Relinks() == 0);  // Publisher parked: nothing published yet.

  crash::CrashInjector injector(
      {crash::CrashPoint::Trigger::kAfterStore, store_ordinal});
  w->dev->SetObserver(&injector);
  try {
    fs->DrainQueuedPublishesForTest();
  } catch (const crash::CrashSignal&) {
    out.crashed = true;
  }
  w->dev->SetObserver(nullptr);
  if (!out.crashed) {
    return out;
  }

  w->dev->CrashWith(crash::MakeFate(fate, seed | 1));
  SPLITFS_CHECK(w->RecoverAll() == 0);
  fs->set_publisher_paused_for_test(false);

  uint64_t fp = 14695981039346656037ull;
  auto mix = [&fp](uint64_t v) { fp = (fp ^ v) * 1099511628211ull; };
  for (int f = 0; f < kFiles; ++f) {
    std::string path = "/bat" + std::to_string(f);
    int rfd = fs->Open(path, vfs::kRdOnly);
    EXPECT_GE(rfd, 0) << path << " lost after batched-publish crash";
    if (rfd < 0) {
      continue;
    }
    vfs::StatBuf st;
    EXPECT_EQ(fs->Fstat(rfd, &st), 0);
    EXPECT_EQ(st.size, kBytes) << path;
    std::vector<uint8_t> back(kBytes);
    EXPECT_EQ(fs->Pread(rfd, back.data(), back.size(), 0),
              static_cast<ssize_t>(back.size()));
    size_t diverged = 0;
    for (size_t i = 0; i < back.size(); ++i) {
      if (back[i] != payload(f, i)) {
        ++diverged;
      }
    }
    EXPECT_EQ(diverged, 0u) << path << ": " << diverged
                            << " bytes diverged after recovery";
    mix(st.size);
    for (size_t i = 0; i < back.size(); i += 997) {
      mix(back[i]);
    }
    fs->Close(rfd);
  }
  ext4sim::FsckReport fsck = ext4sim::RunFsck(w->kfs.get());
  for (const auto& p : fsck.problems) {
    ADD_FAILURE() << "batched publish @ store#" << store_ordinal << ": " << p;
  }
  mix(fsck.clean ? 1 : 0);
  out.fingerprint = fp;
  return out;
}

TEST(CrashMatrixSmoke, MidBatchedPublishCrashRecoversEveryAckedFile) {
  int crashed_states = 0;
  for (uint64_t store : {0ull, 3ull, 8ull}) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      BatchCrashOutcome out = RunBatchedPublishCrashState(store, fate, kSeed);
      ASSERT_TRUE(out.crashed) << "store#" << store << " never reached";
      ++crashed_states;
    }
  }
  EXPECT_EQ(crashed_states, 6);
}

TEST(CrashMatrixSmoke, MidBatchedPublishCrashStatesAreDeterministic) {
  for (crash::FatePolicy fate : {FatePolicy::kSubset, FatePolicy::kTorn}) {
    BatchCrashOutcome a = RunBatchedPublishCrashState(3, fate, kSeed);
    BatchCrashOutcome b = RunBatchedPublishCrashState(3, fate, kSeed);
    ASSERT_TRUE(a.crashed);
    ASSERT_TRUE(b.crashed);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
  }
}

// --- Tenant churn column --------------------------------------------------------------
//
// Power cuts during TenantRouter mount, unmount-with-queued-publishes, and a
// cross-tenant shared-pool drain. The cells run with RouterOptions::journal_service
// off and publishers paused so every store lands on the driving test thread (a
// CrashSignal on a pool worker could not be caught), which also makes each state
// deterministic: same ordinal + fate => byte-identical recovered fingerprint.

tenant::TenantOptions ChurnCellTenant(bool async_publish) {
  tenant::TenantOptions t;
  t.fs.mode = splitfs::Mode::kPosix;
  t.fs.num_staging_files = 2;
  t.fs.staging_file_bytes = common::kMiB;
  t.fs.oplog_bytes = 256 * common::kKiB;
  t.fs.replenish_thread = false;  // Inline refill: deterministic store sequence.
  if (async_publish) {
    t.fs.async_relink = true;
    t.fs.publisher_thread = true;  // Pool passes exist but stay paused in the cells.
  }
  return t;
}

struct TenantWorld {
  std::unique_ptr<crash::World> w;
  tenant::TenantRouter* router = nullptr;
};

TenantWorld MakeTenantWorld() {
  TenantWorld tw;
  tw.w = std::make_unique<crash::World>();
  tw.w->dev = std::make_unique<pmem::Device>(&tw.w->ctx, 64 * common::kMiB);
  tw.w->kfs = std::make_unique<ext4sim::Ext4Dax>(tw.w->dev.get());
  tenant::RouterOptions ropts;
  ropts.journal_service = false;  // Commits stay on the driving thread.
  auto router = std::make_unique<tenant::TenantRouter>(tw.w->kfs.get(), ropts);
  tw.router = router.get();
  tw.w->fs = std::move(router);
  return tw;
}

uint8_t TenantPayload(int file, size_t i) {
  return static_cast<uint8_t>(0x5a ^ (file * 31) ^ (i * 7));
}

constexpr size_t kTenantBytes = 5000;

void WriteTenantFile(tenant::TenantRouter* router, const std::string& path,
                     int file_key) {
  int fd = router->Open(path, vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  std::vector<uint8_t> data(kTenantBytes);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = TenantPayload(file_key, i);
  }
  SPLITFS_CHECK(router->Pwrite(fd, data.data(), data.size(), 0) ==
                static_cast<ssize_t>(data.size()));
  SPLITFS_CHECK(router->Fsync(fd) == 0);  // Acked (at the intent fence when async).
  SPLITFS_CHECK(router->Close(fd) == 0);
}

// Reads the file back through the router, checks every byte, folds it into `fp`.
void CheckTenantFile(tenant::TenantRouter* router, const std::string& path,
                     int file_key, uint64_t* fp) {
  auto mix = [fp](uint64_t v) { *fp = (*fp ^ v) * 1099511628211ull; };
  int fd = router->Open(path, vfs::kRdOnly);
  EXPECT_GE(fd, 0) << path << " lost across tenant-churn crash";
  if (fd < 0) {
    return;
  }
  vfs::StatBuf st;
  EXPECT_EQ(router->Fstat(fd, &st), 0);
  EXPECT_EQ(st.size, kTenantBytes) << path;
  std::vector<uint8_t> back(kTenantBytes);
  EXPECT_EQ(router->Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  size_t diverged = 0;
  for (size_t i = 0; i < back.size(); ++i) {
    if (back[i] != TenantPayload(file_key, i)) {
      ++diverged;
    }
  }
  EXPECT_EQ(diverged, 0u) << path << ": " << diverged << " bytes diverged";
  mix(st.size);
  for (size_t i = 0; i < back.size(); i += 997) {
    mix(back[i]);
  }
  router->Close(fd);
}

// Cell 1: power cut mid-Mount (staging pre-allocation, namespace mkdir). The
// interrupted mount must leave the router clean, the established tenant intact,
// and the same id must mount again after recovery over its leftover artifacts.
BatchCrashOutcome RunMountCrashState(uint64_t store_ordinal, crash::FatePolicy fate,
                                     uint64_t seed) {
  BatchCrashOutcome out;
  TenantWorld tw = MakeTenantWorld();
  tw.w->dev->EnableCrashTracking(true);
  SPLITFS_CHECK(tw.router->Mount("a", ChurnCellTenant(/*async=*/false)) == 0);
  WriteTenantFile(tw.router, "/a/keep", 0);

  crash::CrashInjector injector(
      {crash::CrashPoint::Trigger::kAfterStore, store_ordinal});
  tw.w->dev->SetObserver(&injector);
  try {
    tw.router->Mount("b", ChurnCellTenant(/*async=*/false));
  } catch (const crash::CrashSignal&) {
    out.crashed = true;
  }
  tw.w->dev->SetObserver(nullptr);
  if (!out.crashed) {
    return out;
  }
  EXPECT_FALSE(tw.router->IsMounted("b"));  // A torn mount registers nothing.

  tw.w->dev->CrashWith(crash::MakeFate(fate, seed | 1));
  SPLITFS_CHECK(tw.w->RecoverAll() == 0);

  uint64_t fp = 14695981039346656037ull;
  CheckTenantFile(tw.router, "/a/keep", 0, &fp);
  // The torn id mounts again over whatever staging artifacts the cut left behind.
  EXPECT_EQ(tw.router->Mount("b", ChurnCellTenant(/*async=*/false)), 0);
  WriteTenantFile(tw.router, "/b/fresh", 1);
  CheckTenantFile(tw.router, "/b/fresh", 1, &fp);
  ext4sim::FsckReport fsck = ext4sim::RunFsck(tw.w->kfs.get());
  for (const auto& p : fsck.problems) {
    ADD_FAILURE() << "tenant mount @ store#" << store_ordinal << ": " << p;
  }
  fp = (fp ^ (fsck.clean ? 1 : 0)) * 1099511628211ull;
  out.fingerprint = fp;
  return out;
}

// Cells 2 + 3 share a driver: queue publishes behind paused publishers on two
// tenants, then cut power inside either Unmount("a") (which drains a's queue on
// the calling thread first) or the cross-tenant DrainAllPublishes(). Every fsync
// was acked at its intent fence, so recovery must restore all files of BOTH
// tenants no matter whose relink the cut interrupted.
BatchCrashOutcome RunChurnDrainCrashState(bool unmount, uint64_t store_ordinal,
                                          crash::FatePolicy fate, uint64_t seed) {
  BatchCrashOutcome out;
  TenantWorld tw = MakeTenantWorld();
  tw.w->dev->EnableCrashTracking(true);
  SPLITFS_CHECK(tw.router->Mount("a", ChurnCellTenant(/*async=*/true)) == 0);
  SPLITFS_CHECK(tw.router->Mount("b", ChurnCellTenant(/*async=*/true)) == 0);
  tw.router->tenant_fs("a")->set_publisher_paused_for_test(true);
  tw.router->tenant_fs("b")->set_publisher_paused_for_test(true);

  WriteTenantFile(tw.router, "/a/q0", 0);
  WriteTenantFile(tw.router, "/a/q1", 1);
  WriteTenantFile(tw.router, "/b/q0", 2);
  WriteTenantFile(tw.router, "/b/q1", 3);
  SPLITFS_CHECK(tw.router->tenant_fs("a")->PublishQueueDepth() == 2);
  SPLITFS_CHECK(tw.router->tenant_fs("b")->PublishQueueDepth() == 2);

  crash::CrashInjector injector(
      {crash::CrashPoint::Trigger::kAfterStore, store_ordinal});
  tw.w->dev->SetObserver(&injector);
  try {
    if (unmount) {
      tw.router->Unmount("a");
    } else {
      tw.router->DrainAllPublishes();
    }
  } catch (const crash::CrashSignal&) {
    out.crashed = true;
  }
  tw.w->dev->SetObserver(nullptr);
  if (!out.crashed) {
    return out;
  }
  // An interrupted unmount leaves the tenant mounted — the drain runs before any
  // teardown, so the cut cannot strand a half-dismantled instance.
  EXPECT_TRUE(tw.router->IsMounted("a"));
  EXPECT_TRUE(tw.router->IsMounted("b"));

  tw.w->dev->CrashWith(crash::MakeFate(fate, seed | 1));
  SPLITFS_CHECK(tw.w->RecoverAll() == 0);
  tw.router->tenant_fs("a")->set_publisher_paused_for_test(false);
  tw.router->tenant_fs("b")->set_publisher_paused_for_test(false);

  uint64_t fp = 14695981039346656037ull;
  CheckTenantFile(tw.router, "/a/q0", 0, &fp);
  CheckTenantFile(tw.router, "/a/q1", 1, &fp);
  CheckTenantFile(tw.router, "/b/q0", 2, &fp);
  CheckTenantFile(tw.router, "/b/q1", 3, &fp);
  // Churn completes after recovery: the unmount finishes cleanly and the same
  // namespace remounts with its data still rooted under /a.
  EXPECT_EQ(tw.router->Unmount("a"), 0);
  EXPECT_EQ(tw.router->Mount("a", ChurnCellTenant(/*async=*/true)), 0);
  CheckTenantFile(tw.router, "/a/q0", 0, &fp);
  ext4sim::FsckReport fsck = ext4sim::RunFsck(tw.w->kfs.get());
  for (const auto& p : fsck.problems) {
    ADD_FAILURE() << (unmount ? "tenant unmount" : "tenant drain") << " @ store#"
                  << store_ordinal << ": " << p;
  }
  fp = (fp ^ (fsck.clean ? 1 : 0)) * 1099511628211ull;
  out.fingerprint = fp;
  return out;
}

TEST(CrashMatrixSmoke, TenantMountCrashLeavesRouterCleanAndRemountable) {
  int crashed_states = 0;
  for (uint64_t store : {0ull, 2ull, 5ull}) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      BatchCrashOutcome out = RunMountCrashState(store, fate, kSeed);
      ASSERT_TRUE(out.crashed) << "store#" << store << " never reached in Mount";
      ++crashed_states;
    }
  }
  EXPECT_EQ(crashed_states, 6);
}

TEST(CrashMatrixSmoke, TenantUnmountCrashRecoversEveryAckedFile) {
  int crashed_states = 0;
  for (uint64_t store : {0ull, 3ull, 8ull}) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      BatchCrashOutcome out =
          RunChurnDrainCrashState(/*unmount=*/true, store, fate, kSeed);
      ASSERT_TRUE(out.crashed) << "store#" << store << " never reached in Unmount";
      ++crashed_states;
    }
  }
  EXPECT_EQ(crashed_states, 6);
}

TEST(CrashMatrixSmoke, TenantSharedPoolDrainCrashRecoversBothTenants) {
  int crashed_states = 0;
  for (uint64_t store : {0ull, 5ull, 13ull}) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      BatchCrashOutcome out =
          RunChurnDrainCrashState(/*unmount=*/false, store, fate, kSeed);
      ASSERT_TRUE(out.crashed) << "store#" << store << " never reached in drain";
      ++crashed_states;
    }
  }
  EXPECT_EQ(crashed_states, 6);
}

TEST(CrashMatrixSmoke, TenantChurnCrashStatesAreDeterministic) {
  for (crash::FatePolicy fate : {FatePolicy::kSubset, FatePolicy::kTorn}) {
    {
      BatchCrashOutcome a = RunMountCrashState(4, fate, kSeed);
      BatchCrashOutcome b = RunMountCrashState(4, fate, kSeed);
      ASSERT_TRUE(a.crashed && b.crashed);
      EXPECT_EQ(a.fingerprint, b.fingerprint);
    }
    for (bool unmount : {true, false}) {
      BatchCrashOutcome a = RunChurnDrainCrashState(unmount, 3, fate, kSeed);
      BatchCrashOutcome b = RunChurnDrainCrashState(unmount, 3, fate, kSeed);
      ASSERT_TRUE(a.crashed && b.crashed);
      EXPECT_EQ(a.fingerprint, b.fingerprint);
    }
  }
}

// --- Range-granular strict logging column -----------------------------------------------
//
// The per-range op-logging path opens two schedules the script-driven matrix cannot
// reach: a power cut inside the log-full checkpoint (epoch gate closed, staged
// per-range runs being published, log being reset) while fenced per-range entries
// are still live, and an interleaved two-writer schedule on one inode whose log
// entries alternate between disjoint ranges — replay must stitch them back by seq,
// not by file order. Both drivers are single-threaded (the writers' interleaving is
// the deterministic schedule itself), so every (ordinal, fate) cell is reproducible
// and double-runs must produce byte-identical recovered fingerprints.

struct RangeCrashOutcome {
  bool crashed = false;
  uint64_t acked = 0;        // Pwrite calls that returned before the cut.
  uint64_t checkpoints = 0;  // Completed checkpoints at the moment of the cut.
  uint64_t fingerprint = 0;
};

struct StrictRangeWorld {
  std::unique_ptr<crash::World> w;
  splitfs::SplitFs* fs = nullptr;
};

StrictRangeWorld MakeStrictRangeWorld(uint64_t oplog_bytes) {
  StrictRangeWorld srw;
  srw.w = std::make_unique<crash::World>();
  srw.w->dev = std::make_unique<pmem::Device>(&srw.w->ctx, 64 * common::kMiB);
  srw.w->kfs = std::make_unique<ext4sim::Ext4Dax>(srw.w->dev.get());
  splitfs::Options o;
  o.mode = splitfs::Mode::kStrict;
  o.num_staging_files = 2;
  o.staging_file_bytes = 4 * common::kMiB;
  o.oplog_bytes = oplog_bytes;
  o.replenish_thread = false;  // Inline refill: deterministic store sequence.
  auto sfs = std::make_unique<splitfs::SplitFs>(srw.w->kfs.get(), o);
  srw.fs = sfs.get();
  srw.w->fs = std::move(sfs);
  return srw;
}

// Cell driver: distinct (non-coalescing) 4 KB strict range writes into a
// preallocated file until the 64-slot op log forces CheckpointForFull. The injector
// arms at `arm_write` (use FindCheckpointTriggerWrite for the write whose append
// overflows the log), so small ordinals cut inside that write's staging stores and
// larger ones inside the checkpoint's relinks / journal commit / log reset. Strict
// acks only durable data: every Pwrite that RETURNED must read back exactly after
// recovery, under every drain fate; the one in-flight write is unconstrained but
// folds into the determinism fingerprint.
constexpr uint64_t kRangeSlot = 4096;
constexpr uint64_t kRangeStride = 8192;
constexpr int kRangeWrites = 96;

uint8_t RangeFill(int i) { return static_cast<uint8_t>(0x30 ^ (i * 41)); }

RangeCrashOutcome RunStrictCheckpointCrashState(int arm_write, uint64_t store_ordinal,
                                                crash::FatePolicy fate, uint64_t seed) {
  RangeCrashOutcome out;
  StrictRangeWorld srw = MakeStrictRangeWorld(/*oplog_bytes=*/4 * common::kKiB);
  splitfs::SplitFs* fs = srw.fs;
  srw.w->dev->EnableCrashTracking(true);

  int fd = fs->Open("/rng", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  SPLITFS_CHECK(fs->Fallocate(fd, 0, kRangeWrites * kRangeStride,
                              /*keep_size=*/false) == 0);
  SPLITFS_CHECK(fs->Fsync(fd) == 0);

  crash::CrashInjector injector(
      {crash::CrashPoint::Trigger::kAfterStore, store_ordinal});
  std::vector<uint8_t> buf(kRangeSlot);
  try {
    for (int i = 0; i < kRangeWrites; ++i) {
      if (i == arm_write) {
        srw.w->dev->SetObserver(&injector);
      }
      std::memset(buf.data(), RangeFill(i), buf.size());
      SPLITFS_CHECK(fs->Pwrite(fd, buf.data(), buf.size(), i * kRangeStride) ==
                    static_cast<ssize_t>(buf.size()));
      out.acked = i + 1;
    }
  } catch (const crash::CrashSignal&) {
    out.crashed = true;
  }
  srw.w->dev->SetObserver(nullptr);
  out.checkpoints = fs->Checkpoints();
  if (!out.crashed) {
    return out;
  }

  srw.w->dev->CrashWith(crash::MakeFate(fate, seed | 1));
  SPLITFS_CHECK(srw.w->RecoverAll() == 0);

  uint64_t fp = 14695981039346656037ull;
  auto mix = [&fp](uint64_t v) { fp = (fp ^ v) * 1099511628211ull; };
  int rfd = fs->Open("/rng", vfs::kRdOnly);
  EXPECT_GE(rfd, 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs->Fstat(rfd, &st), 0);
  EXPECT_EQ(st.size, kRangeWrites * kRangeStride);  // Fallocate'd size was fsync'd.
  std::vector<uint8_t> back(kRangeSlot);
  for (uint64_t i = 0; i < out.acked; ++i) {
    EXPECT_EQ(fs->Pread(rfd, back.data(), back.size(), i * kRangeStride),
              static_cast<ssize_t>(back.size()));
    size_t diverged = 0;
    for (uint8_t b : back) {
      if (b != RangeFill(static_cast<int>(i))) {
        ++diverged;
      }
    }
    EXPECT_EQ(diverged, 0u) << "acked range write " << i << " (of " << out.acked
                            << ") lost or torn across the checkpoint cut";
    mix(back[0]);
  }
  if (out.acked < kRangeWrites) {  // The in-flight write: any outcome, but fixed.
    EXPECT_EQ(fs->Pread(rfd, back.data(), back.size(), out.acked * kRangeStride),
              static_cast<ssize_t>(back.size()));
    for (size_t i = 0; i < back.size(); i += 131) {
      mix(back[i]);
    }
  }
  fs->Close(rfd);
  ext4sim::FsckReport fsck = ext4sim::RunFsck(srw.w->kfs.get());
  for (const auto& p : fsck.problems) {
    ADD_FAILURE() << "strict checkpoint cut @ write#" << arm_write << " store#"
                  << store_ordinal << "/" << crash::FateName(fate) << ": " << p;
  }
  mix(fsck.clean ? 1 : 0);
  out.fingerprint = fp;
  return out;
}

// Counts device stores without disturbing them: the probe runs measure how many
// stores a schedule issues so the crash sweeps pick ordinals that actually land.
class StoreCounter : public pmem::DeviceObserver {
 public:
  void OnStore(uint64_t, uint64_t, bool) override { ++stores_; }
  void OnClwb(uint64_t, uint64_t) override {}
  void OnFence(uint64_t) override {}
  uint64_t stores() const { return stores_; }

 private:
  uint64_t stores_ = 0;
};

// Unarmed probe run: the write whose log append overflows the 64-slot log and runs
// the first checkpoint. Single-threaded and virtual-timed, so the index is the same
// in every armed re-execution. When `stores_from_trigger` is given, a counter arms
// at that write and reports how many stores the rest of the schedule (the
// triggering write, the checkpoint, the remaining writes) issues.
int FindCheckpointTriggerWrite(uint64_t* stores_from_trigger = nullptr,
                               int known_trigger = -1) {
  StrictRangeWorld srw = MakeStrictRangeWorld(/*oplog_bytes=*/4 * common::kKiB);
  splitfs::SplitFs* fs = srw.fs;
  int fd = fs->Open("/rng", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  SPLITFS_CHECK(fs->Fallocate(fd, 0, kRangeWrites * kRangeStride,
                              /*keep_size=*/false) == 0);
  SPLITFS_CHECK(fs->Fsync(fd) == 0);
  StoreCounter counter;
  std::vector<uint8_t> buf(kRangeSlot, 0x11);
  int trigger = -1;
  for (int i = 0; i < kRangeWrites; ++i) {
    if (i == known_trigger && stores_from_trigger != nullptr) {
      srw.w->dev->SetObserver(&counter);
    }
    SPLITFS_CHECK(fs->Pwrite(fd, buf.data(), buf.size(), i * kRangeStride) ==
                  static_cast<ssize_t>(buf.size()));
    if (trigger < 0 && fs->Checkpoints() > 0) {
      trigger = i;
      if (stores_from_trigger == nullptr) {
        break;
      }
    }
  }
  srw.w->dev->SetObserver(nullptr);
  if (stores_from_trigger != nullptr) {
    *stores_from_trigger = counter.stores();
  }
  return trigger;
}

TEST(CrashMatrixSmoke, StrictRangeLogCheckpointCutRecoversAckedWrites) {
  int trigger = FindCheckpointTriggerWrite();
  ASSERT_GE(trigger, 0) << "96 distinct strict range writes never filled the log";
  uint64_t span = 0;  // Stores from the triggering write to the schedule's end.
  FindCheckpointTriggerWrite(&span, trigger);
  ASSERT_GT(span, 16u);
  int crashed_states = 0;
  bool cut_inside_checkpoint = false;
  bool cut_after_checkpoint = false;
  // Ordinal 0 lands in the triggering write's own staging stores; the fractions
  // walk into the checkpoint's relink + commit + log-reset stores and beyond.
  for (uint64_t store : std::vector<uint64_t>{0, span / 16, span / 8, span / 4,
                                              span / 2, (3 * span) / 4}) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      RangeCrashOutcome out =
          RunStrictCheckpointCrashState(trigger, store, fate, kSeed);
      ASSERT_TRUE(out.crashed) << "store#" << store << " never reached";
      ++crashed_states;
      if (out.checkpoints == 0) {
        cut_inside_checkpoint = true;  // Cut before the checkpoint could finish.
      } else {
        cut_after_checkpoint = true;  // Post-reset image: replay from a reused log.
      }
    }
  }
  EXPECT_EQ(crashed_states, 12);
  EXPECT_TRUE(cut_inside_checkpoint)
      << "no cell cut inside the checkpoint window; widen the ordinal sweep";
  EXPECT_TRUE(cut_after_checkpoint)
      << "no cell survived past the checkpoint; widen the ordinal sweep";
}

TEST(CrashMatrixSmoke, StrictRangeLogCheckpointCutIsDeterministic) {
  int trigger = FindCheckpointTriggerWrite();
  ASSERT_GE(trigger, 0);
  uint64_t span = 0;
  FindCheckpointTriggerWrite(&span, trigger);
  for (uint64_t store : std::vector<uint64_t>{span / 8, span / 2}) {
    for (crash::FatePolicy fate : {FatePolicy::kSubset, FatePolicy::kTorn}) {
      RangeCrashOutcome a = RunStrictCheckpointCrashState(trigger, store, fate, kSeed);
      RangeCrashOutcome b = RunStrictCheckpointCrashState(trigger, store, fate, kSeed);
      ASSERT_TRUE(a.crashed);
      ASSERT_TRUE(b.crashed);
      EXPECT_EQ(a.acked, b.acked);
      EXPECT_EQ(a.checkpoints, b.checkpoints);
      EXPECT_EQ(a.fingerprint, b.fingerprint);  // Byte-identical recovered states.
    }
  }
}

// Interleaved two-range-writer schedule on one inode: writers A and B alternate
// strictly (A,B,A,B,...) over disjoint halves of the file, two rounds deep, so the
// op log holds interleaved per-range entries for the same inode and the second
// round updates round-one staging bytes in place. The cut sweeps the whole
// schedule; recovery must restore every acked write exactly — entries replayed in
// seq order across the interleaving — with one unconstrained in-flight slot.
constexpr int kAbSlots = 4;
constexpr int kAbRounds = 2;
constexpr uint64_t kAbHalf = 128 * common::kKiB;

uint8_t AbFill(int writer, int slot, int round) {
  return static_cast<uint8_t>(0x80 | (writer << 6) | (slot << 2) | round);
}

RangeCrashOutcome RunInterleavedRangeWritersCrashState(uint64_t store_ordinal,
                                                       crash::FatePolicy fate,
                                                       uint64_t seed,
                                                       uint64_t* probe_stores = nullptr) {
  RangeCrashOutcome out;
  StrictRangeWorld srw = MakeStrictRangeWorld(/*oplog_bytes=*/256 * common::kKiB);
  splitfs::SplitFs* fs = srw.fs;
  srw.w->dev->EnableCrashTracking(true);

  int fd = fs->Open("/ab", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  SPLITFS_CHECK(fs->Fallocate(fd, 0, 2 * kAbHalf, /*keep_size=*/false) == 0);
  SPLITFS_CHECK(fs->Fsync(fd) == 0);

  // Flat schedule: (round, slot, writer) with writers alternating innermost.
  struct Op {
    int writer, slot, round;
    uint64_t off;
  };
  std::vector<Op> ops;
  for (int r = 0; r < kAbRounds; ++r) {
    for (int s = 0; s < kAbSlots; ++s) {
      for (int wtr = 0; wtr < 2; ++wtr) {
        ops.push_back({wtr, s, r, wtr * kAbHalf + s * kRangeSlot});
      }
    }
  }

  StoreCounter counter;
  crash::CrashInjector injector(
      {crash::CrashPoint::Trigger::kAfterStore, store_ordinal});
  srw.w->dev->SetObserver(probe_stores != nullptr
                              ? static_cast<pmem::DeviceObserver*>(&counter)
                              : &injector);
  std::vector<uint8_t> buf(kRangeSlot);
  try {
    for (const Op& op : ops) {
      std::memset(buf.data(), AbFill(op.writer, op.slot, op.round), buf.size());
      SPLITFS_CHECK(fs->Pwrite(fd, buf.data(), buf.size(), op.off) ==
                    static_cast<ssize_t>(buf.size()));
      out.acked++;
    }
  } catch (const crash::CrashSignal&) {
    out.crashed = true;
  }
  srw.w->dev->SetObserver(nullptr);
  if (probe_stores != nullptr) {
    *probe_stores = counter.stores();
    return out;
  }
  if (!out.crashed) {
    return out;
  }

  srw.w->dev->CrashWith(crash::MakeFate(fate, seed | 1));
  SPLITFS_CHECK(srw.w->RecoverAll() == 0);

  // Last acked round per (writer, slot); -1 means never written (reads as zeros).
  int last_round[2][kAbSlots];
  for (auto& row : last_round) {
    for (int& v : row) {
      v = -1;
    }
  }
  for (uint64_t i = 0; i < out.acked; ++i) {
    last_round[ops[i].writer][ops[i].slot] = ops[i].round;
  }
  uint64_t fp = 14695981039346656037ull;
  auto mix = [&fp](uint64_t v) { fp = (fp ^ v) * 1099511628211ull; };
  int rfd = fs->Open("/ab", vfs::kRdOnly);
  EXPECT_GE(rfd, 0);
  std::vector<uint8_t> back(kRangeSlot);
  for (int wtr = 0; wtr < 2; ++wtr) {
    for (int s = 0; s < kAbSlots; ++s) {
      uint64_t off = wtr * kAbHalf + s * kRangeSlot;
      EXPECT_EQ(fs->Pread(rfd, back.data(), back.size(), off),
                static_cast<ssize_t>(back.size()));
      bool in_flight = out.acked < ops.size() && ops[out.acked].writer == wtr &&
                       ops[out.acked].slot == s;
      if (!in_flight) {
        int r = last_round[wtr][s];
        uint8_t expect = r < 0 ? 0 : AbFill(wtr, s, r);
        size_t diverged = 0;
        for (uint8_t b : back) {
          if (b != expect) {
            ++diverged;
          }
        }
        EXPECT_EQ(diverged, 0u)
            << "writer " << wtr << " slot " << s << " (last acked round " << r
            << ") lost or torn across the interleaved-entry replay";
      }
      for (size_t i = 0; i < back.size(); i += 131) {
        mix(back[i]);
      }
    }
  }
  fs->Close(rfd);
  ext4sim::FsckReport fsck = ext4sim::RunFsck(srw.w->kfs.get());
  for (const auto& p : fsck.problems) {
    ADD_FAILURE() << "interleaved range writers @ store#" << store_ordinal << "/"
                  << crash::FateName(fate) << ": " << p;
  }
  mix(fsck.clean ? 1 : 0);
  out.fingerprint = fp;
  return out;
}

TEST(CrashMatrixSmoke, InterleavedRangeWriterScheduleSurvivesCuts) {
  uint64_t span = 0;  // Total stores the 16-write interleaved schedule issues.
  RunInterleavedRangeWritersCrashState(0, FatePolicy::kDropAll, kSeed, &span);
  ASSERT_GT(span, 16u);
  int crashed_states = 0;
  // The sweep spans the first round's fresh interleaved entries and the second
  // round's in-place staging updates.
  for (uint64_t store : std::vector<uint64_t>{0, span / 8, span / 4, span / 2,
                                              (3 * span) / 4, span - 2}) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      RangeCrashOutcome out =
          RunInterleavedRangeWritersCrashState(store, fate, kSeed);
      ASSERT_TRUE(out.crashed) << "store#" << store << " never reached";
      ++crashed_states;
    }
  }
  EXPECT_EQ(crashed_states, 12);
}

TEST(CrashMatrixSmoke, InterleavedRangeWriterCutsAreDeterministic) {
  uint64_t span = 0;
  RunInterleavedRangeWritersCrashState(0, FatePolicy::kDropAll, kSeed, &span);
  for (uint64_t store : std::vector<uint64_t>{span / 4, (3 * span) / 4}) {
    for (crash::FatePolicy fate : {FatePolicy::kSubset, FatePolicy::kTorn}) {
      RangeCrashOutcome a = RunInterleavedRangeWritersCrashState(store, fate, kSeed);
      RangeCrashOutcome b = RunInterleavedRangeWritersCrashState(store, fate, kSeed);
      ASSERT_TRUE(a.crashed == b.crashed);
      EXPECT_EQ(a.acked, b.acked);
      EXPECT_EQ(a.fingerprint, b.fingerprint);  // Byte-identical recovered states.
    }
  }
}

// The same schedules, driven against each baseline with its own guarantee profile.
TEST(CrashMatrix, BaselinesUnderSameSchedule) {
  uint64_t total_states = 0;
  for (const std::string which : {"nova", "pmfs", "strata"}) {
    for (const auto& script : crash::AllScripts(kSeed)) {
      RunnerConfig cfg;
      cfg.seed = kSeed;
      cfg.max_fence_points = 6;
      cfg.max_store_points = 2;
      cfg.fates = {FatePolicy::kDropAll, FatePolicy::kTorn};
      CrashRunner runner(crash::BaselineWorldFactory(which), script,
                         Guarantees::PmBaseline(), cfg);
      MatrixStats stats = runner.Run();
      total_states += stats.crash_states;
      ExpectClean(stats, which + "/" + script.name);
    }
  }
  EXPECT_GE(total_states, 50u);
}

}  // namespace
