// Crash-state matrix: store/fence-granular failure injection with recovery oracles
// across SplitFS (all three consistency modes) and the NOVA/PMFS/Strata baselines.
//
// Each crash state is one (workload, crash point, drain fate) triple: a fresh world
// re-executes the deterministic workload, power is cut at the exact store/fence, the
// un-fenced stores are dropped / subset-drained / torn, recovery remounts, and the
// oracles of src/crash/oracles.h validate durability, atomicity, integrity, and
// post-recovery service.
//
// Tests whose names contain "Smoke" form the quick subset (ctest -L crash_smoke);
// the full matrix is labeled crash_matrix so fast iterations can exclude it
// (ctest -LE crash_matrix).
#include <gtest/gtest.h>

#include "src/crash/crash_runner.h"
#include "src/ext4/fsck.h"

namespace {

using crash::CrashRunner;
using crash::FatePolicy;
using crash::Guarantees;
using crash::MatrixStats;
using crash::RunnerConfig;

constexpr uint64_t kSeed = 20190727;  // Fixed: the whole matrix is reproducible.

Guarantees GuaranteesFor(splitfs::Mode mode) {
  switch (mode) {
    case splitfs::Mode::kPosix:
      return Guarantees::SplitFsPosix();
    case splitfs::Mode::kSync:
      return Guarantees::SplitFsSync();
    case splitfs::Mode::kStrict:
      return Guarantees::SplitFsStrict();
  }
  return Guarantees::SplitFsPosix();
}

void ExpectClean(const MatrixStats& stats, const std::string& what) {
  EXPECT_EQ(stats.oracle_failures, 0u) << what << ": " << stats.oracle_failures
                                       << " failing crash states";
  for (const std::string& f : stats.failures) {
    ADD_FAILURE() << what << ": " << f;
  }
}

TEST(CrashMatrixSmoke, StrictAppendSurvivesInjection) {
  RunnerConfig cfg;
  cfg.seed = kSeed;
  cfg.max_fence_points = 4;
  cfg.max_store_points = 2;
  cfg.fates = {FatePolicy::kDropAll, FatePolicy::kTorn};
  CrashRunner runner(crash::SplitFsWorldFactory(splitfs::Mode::kStrict),
                     crash::MakeAppendScript(kSeed), Guarantees::SplitFsStrict(), cfg);
  MatrixStats stats = runner.Run();
  EXPECT_GE(stats.crash_states, 8u);
  ExpectClean(stats, "strict/append");
}

TEST(CrashMatrixSmoke, DeterministicUnderFixedSeed) {
  RunnerConfig cfg;
  cfg.seed = kSeed;
  cfg.max_fence_points = 3;
  cfg.max_store_points = 1;
  cfg.fates = {FatePolicy::kSubset, FatePolicy::kTorn};
  auto run = [&cfg] {
    CrashRunner runner(crash::SplitFsWorldFactory(splitfs::Mode::kStrict),
                       crash::MakeOverwriteScript(kSeed),
                       Guarantees::SplitFsStrict(), cfg);
    return runner.Run();
  };
  MatrixStats a = run();
  MatrixStats b = run();
  EXPECT_EQ(a.crash_states, b.crash_states);
  EXPECT_EQ(a.oracle_failures, b.oracle_failures);
  EXPECT_EQ(a.fingerprint, b.fingerprint);  // Byte-identical recovered states.
  EXPECT_EQ(a.failures, b.failures);
}

// The acceptance matrix: >= 100 distinct crash states across
// {posix, sync, strict} x {append, overwrite, rename} on SplitFS.
TEST(CrashMatrix, SplitFsModesTimesWorkloads) {
  uint64_t total_states = 0;
  for (splitfs::Mode mode :
       {splitfs::Mode::kPosix, splitfs::Mode::kSync, splitfs::Mode::kStrict}) {
    for (const auto& script : crash::AllScripts(kSeed)) {
      RunnerConfig cfg;
      cfg.seed = kSeed;
      CrashRunner runner(crash::SplitFsWorldFactory(mode), script,
                         GuaranteesFor(mode), cfg);
      MatrixStats stats = runner.Run();
      total_states += stats.crash_states;
      ExpectClean(stats, std::string(splitfs::ModeName(mode)) + "/" + script.name);
      EXPECT_GT(stats.fence_points, 0u);
      EXPECT_GT(stats.store_points, 0u);
    }
  }
  EXPECT_GE(total_states, 100u);
}

// Regression: op-log replay must honor logged truncate ordering. The core relink of
// a published entry skips on holes, but its partial-block head copy would happily
// re-write bytes a later truncate removed — recovery must not resurrect them.
TEST(CrashMatrixSmoke, TruncateAfterStagedAppendsDoesNotResurrect) {
  auto w = crash::SplitFsWorldFactory(splitfs::Mode::kStrict)();
  w->dev->EnableCrashTracking(true);
  int fd = w->fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(w->fs->Fsync(fd), 0);
  std::vector<uint8_t> a(9000, 0x77);
  ASSERT_EQ(w->fs->Pwrite(fd, a.data(), a.size(), 0), static_cast<ssize_t>(a.size()));
  ASSERT_EQ(w->fs->Close(fd), 0);  // Publishes.
  fd = w->fs->Open("/f", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> b(5000, 0x33);
  ASSERT_EQ(w->fs->Pwrite(fd, b.data(), b.size(), 9000),
            static_cast<ssize_t>(b.size()));
  ASSERT_GE(w->fs->Open("/f", vfs::kRdWr | vfs::kTrunc), 0);  // Discards everything.
  w->dev->Crash();
  ASSERT_EQ(w->RecoverAll(), 0);
  vfs::StatBuf sb;
  ASSERT_EQ(w->fs->Stat("/f", &sb), 0);
  EXPECT_EQ(sb.size, 0u) << "replay resurrected truncated data";
}

// --- Async relink column ----------------------------------------------------------------
// The same mode × workload sweep with Options::async_relink on (deterministic inline
// publisher): fsync fences intent records before the publish runs, so injected
// crashes land between the intent fence and the relinks/commit. Recovery must land
// on the staged contents (intent replay re-relinks them) or the published contents —
// never a torn mix — and fsck must stay clean.

TEST(CrashMatrixSmoke, AsyncRelinkIntentWindowSurvivesInjection) {
  RunnerConfig cfg;
  cfg.seed = kSeed;
  cfg.max_fence_points = 4;
  cfg.max_store_points = 2;
  cfg.fates = {FatePolicy::kDropAll, FatePolicy::kTorn};
  CrashRunner runner(crash::SplitFsWorldFactory(splitfs::Mode::kPosix,
                                                /*async_relink=*/true),
                     crash::MakeAppendScript(kSeed), Guarantees::SplitFsPosix(), cfg);
  MatrixStats stats = runner.Run();
  EXPECT_GE(stats.crash_states, 8u);
  ExpectClean(stats, "posix+async/append");
}

TEST(CrashMatrixSmoke, AsyncRelinkDeterministicUnderFixedSeed) {
  RunnerConfig cfg;
  cfg.seed = kSeed;
  cfg.max_fence_points = 3;
  cfg.max_store_points = 1;
  cfg.fates = {FatePolicy::kSubset, FatePolicy::kTorn};
  auto run = [&cfg] {
    CrashRunner runner(crash::SplitFsWorldFactory(splitfs::Mode::kSync,
                                                  /*async_relink=*/true),
                       crash::MakeAppendScript(kSeed), Guarantees::SplitFsSync(), cfg);
    return runner.Run();
  };
  MatrixStats a = run();
  MatrixStats b = run();
  EXPECT_EQ(a.crash_states, b.crash_states);
  EXPECT_EQ(a.fingerprint, b.fingerprint);  // Inline publisher: byte-identical.
  EXPECT_EQ(a.failures, b.failures);
}

// The async contract end-to-end: with the real publisher parked, fsync returns once
// the relink intents are fenced; a crash before any relink ran must still recover
// the acknowledged bytes — recovery replays the intents. (Also the regression test
// for the recovery-scan bug that silently discarded intent records: op codes above
// kRenameTo failed structural validation, so exactly the entries that make an
// acknowledged-but-unpublished fsync recoverable were dropped.)
TEST(CrashMatrixSmoke, AckedButUnpublishedFsyncRecoversFromIntents) {
  for (splitfs::Mode mode : {splitfs::Mode::kPosix, splitfs::Mode::kStrict}) {
    auto w = std::make_unique<crash::World>();
    w->dev = std::make_unique<pmem::Device>(&w->ctx, 64 * common::kMiB);
    w->kfs = std::make_unique<ext4sim::Ext4Dax>(w->dev.get());
    splitfs::Options o;
    o.mode = mode;
    o.num_staging_files = 2;
    o.staging_file_bytes = 4 * common::kMiB;
    o.oplog_bytes = 256 * common::kKiB;
    o.async_relink = true;
    o.publisher_thread = true;
    auto sfs = std::make_unique<splitfs::SplitFs>(w->kfs.get(), o);
    splitfs::SplitFs* fs = sfs.get();
    w->fs = std::move(sfs);
    w->dev->EnableCrashTracking(true);
    fs->set_publisher_paused_for_test(true);  // Intents fence; relinks never run.

    int fd = fs->Open("/acked", vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(fs->Fsync(fd), 0);  // The create itself is durable.
    std::vector<uint8_t> data(6000);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<uint8_t>(0x11 ^ (i * 13));
    }
    ASSERT_EQ(fs->Pwrite(fd, data.data(), data.size(), 0),
              static_cast<ssize_t>(data.size()));
    ASSERT_EQ(fs->Fsync(fd), 0);  // Returns at the intent fence; publish queued.
    EXPECT_EQ(fs->Relinks(), 0u) << "publisher ran despite the pause";

    w->dev->Crash();
    ASSERT_EQ(w->RecoverAll(), 0);
    fs->set_publisher_paused_for_test(false);

    int rfd = fs->Open("/acked", vfs::kRdOnly);
    ASSERT_GE(rfd, 0);
    vfs::StatBuf st;
    ASSERT_EQ(fs->Fstat(rfd, &st), 0);
    EXPECT_EQ(st.size, data.size()) << splitfs::ModeName(mode);
    std::vector<uint8_t> back(data.size());
    ASSERT_EQ(fs->Pread(rfd, back.data(), back.size(), 0),
              static_cast<ssize_t>(back.size()));
    EXPECT_EQ(back, data) << splitfs::ModeName(mode);
    fs->Close(rfd);
    ext4sim::FsckReport fsck = ext4sim::RunFsck(w->kfs.get());
    for (const auto& p : fsck.problems) {
      ADD_FAILURE() << splitfs::ModeName(mode) << ": " << p;
    }
  }
}

TEST(CrashMatrix, AsyncRelinkModesTimesWorkloads) {
  uint64_t total_states = 0;
  for (splitfs::Mode mode :
       {splitfs::Mode::kPosix, splitfs::Mode::kSync, splitfs::Mode::kStrict}) {
    for (const auto& script : crash::AllScripts(kSeed)) {
      RunnerConfig cfg;
      cfg.seed = kSeed;
      CrashRunner runner(crash::SplitFsWorldFactory(mode, /*async_relink=*/true),
                         script, GuaranteesFor(mode), cfg);
      MatrixStats stats = runner.Run();
      total_states += stats.crash_states;
      ExpectClean(stats, std::string(splitfs::ModeName(mode)) + "+async/" + script.name);
    }
  }
  EXPECT_GE(total_states, 100u);
}

// --- jbd2 commit pipeline column --------------------------------------------------------
// The pipelined journal creates a crash state the script-driven matrix cannot reach
// single-threaded: power cut mid-writeout of T_n while T_{n+1} already holds live
// mutations. The mid-writeout hook stages exactly that window — T_n creates and
// fills a file, T_{n+1} (populated after the seal, barrier released) renames it and
// creates another — and the injector cuts the writeout at a chosen journal store.
// Recovery must roll back the running T_{n+1} first, then the unsealed T_n, newest
// mutation first; rolling back T_n first would leave T_{n+1}'s rename undo pointing
// a resurrected dirent at an erased inode, which fsck flags as a dangling entry.

struct PipelineCrashOutcome {
  bool crashed = false;
  bool fsck_clean = false;
  uint64_t free_blocks = 0;
  uint64_t fingerprint = 0;  // Stat results of every involved path.
};

PipelineCrashOutcome RunPipelineCrashState(uint64_t store_ordinal,
                                           crash::FatePolicy fate, uint64_t seed) {
  PipelineCrashOutcome out;
  sim::Context ctx;
  pmem::Device dev(&ctx, 64 * common::kMiB);
  ext4sim::Ext4Dax fs(&dev);
  dev.EnableCrashTracking(true);

  // Durable base state.
  int base = fs.Open("/base", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(base >= 0);
  std::vector<uint8_t> img(6000, 0x5C);
  SPLITFS_CHECK(fs.Pwrite(base, img.data(), img.size(), 0) ==
                static_cast<ssize_t>(img.size()));
  SPLITFS_CHECK(fs.CommitJournal(/*fsync_barrier=*/false) == 0);
  dev.Fence();

  // T_n: create + fill a file; its commit is the writeout the crash will cut.
  int fd = fs.Open("/tn", vfs::kRdWr | vfs::kCreate);
  SPLITFS_CHECK(fd >= 0);
  std::vector<uint8_t> data(5000, 0xA1);
  SPLITFS_CHECK(fs.Pwrite(fd, data.data(), data.size(), 0) ==
                static_cast<ssize_t>(data.size()));

  crash::CrashInjector injector(
      {crash::CrashPoint::Trigger::kAfterStore, store_ordinal});
  fs.journal_for_test()->SetMidWriteoutHookForTest([&fs, &dev, &injector] {
    // T_{n+1}: mutations stacked on T_n's state while its writeout is in flight.
    SPLITFS_CHECK(fs.Rename("/tn", "/tn-renamed") == 0);
    SPLITFS_CHECK(fs.Open("/tq", vfs::kRdWr | vfs::kCreate) >= 0);
    dev.SetObserver(&injector);  // Arm: ordinal 0 = first writeout store.
  });
  try {
    fs.CommitJournal(/*fsync_barrier=*/true);
  } catch (const crash::CrashSignal&) {
    out.crashed = true;
  }
  dev.SetObserver(nullptr);
  fs.journal_for_test()->SetMidWriteoutHookForTest(nullptr);
  if (!out.crashed) {
    return out;
  }

  dev.CrashWith(crash::MakeFate(fate, seed | 1));
  SPLITFS_CHECK(fs.Recover() == 0);

  ext4sim::FsckReport fsck = ext4sim::RunFsck(&fs);
  out.fsck_clean = fsck.clean;
  for (const std::string& p : fsck.problems) {
    ADD_FAILURE() << "pipeline crash @ store#" << store_ordinal << "/"
                  << crash::FateName(fate) << ": " << p;
  }
  out.free_blocks = fs.FreeBlocks();
  uint64_t fp = 14695981039346656037ull;
  auto mix = [&fp](uint64_t v) { fp = (fp ^ v) * 1099511628211ull; };
  for (const char* p : {"/base", "/tn", "/tn-renamed", "/tq"}) {
    vfs::StatBuf sb;
    mix(fs.Stat(p, &sb) == 0 ? sb.size : ~0ull);
  }
  out.fingerprint = fp;

  // Neither transaction reached its commit record: everything above the base
  // state rolls back, under every drain fate.
  vfs::StatBuf sb;
  EXPECT_EQ(fs.Stat("/base", &sb), 0);
  EXPECT_EQ(sb.size, 6000u);
  EXPECT_EQ(fs.Stat("/tn", &sb), -ENOENT);
  EXPECT_EQ(fs.Stat("/tn-renamed", &sb), -ENOENT);
  EXPECT_EQ(fs.Stat("/tq", &sb), -ENOENT);
  return out;
}

TEST(CrashMatrixSmoke, MidWriteoutCrashWithLiveNextTransactionRecovers) {
  int crashed_states = 0;
  // T_n dirtied >= 3 metadata blocks, so the writeout spans >= 5 journal stores;
  // sweep the cut across the descriptor, metadata, and commit-record stores.
  for (uint64_t store = 0; store < 4; ++store) {
    for (crash::FatePolicy fate : {FatePolicy::kDropAll, FatePolicy::kTorn}) {
      PipelineCrashOutcome out = RunPipelineCrashState(store, fate, kSeed);
      ASSERT_TRUE(out.crashed) << "store#" << store << " never reached";
      EXPECT_TRUE(out.fsck_clean);
      ++crashed_states;
    }
  }
  EXPECT_EQ(crashed_states, 8);
}

TEST(CrashMatrixSmoke, MidWriteoutCrashStatesAreDeterministic) {
  for (crash::FatePolicy fate : {FatePolicy::kSubset, FatePolicy::kTorn}) {
    PipelineCrashOutcome a = RunPipelineCrashState(2, fate, kSeed);
    PipelineCrashOutcome b = RunPipelineCrashState(2, fate, kSeed);
    ASSERT_TRUE(a.crashed);
    ASSERT_TRUE(b.crashed);
    EXPECT_EQ(a.fsck_clean, b.fsck_clean);
    EXPECT_EQ(a.free_blocks, b.free_blocks);
    EXPECT_EQ(a.fingerprint, b.fingerprint);  // Byte-identical recovered states.
  }
}

// The same schedules, driven against each baseline with its own guarantee profile.
TEST(CrashMatrix, BaselinesUnderSameSchedule) {
  uint64_t total_states = 0;
  for (const std::string which : {"nova", "pmfs", "strata"}) {
    for (const auto& script : crash::AllScripts(kSeed)) {
      RunnerConfig cfg;
      cfg.seed = kSeed;
      cfg.max_fence_points = 6;
      cfg.max_store_points = 2;
      cfg.fates = {FatePolicy::kDropAll, FatePolicy::kTorn};
      CrashRunner runner(crash::BaselineWorldFactory(which), script,
                         Guarantees::PmBaseline(), cfg);
      MatrixStats stats = runner.Run();
      total_states += stats.crash_states;
      ExpectClean(stats, which + "/" + script.name);
    }
  }
  EXPECT_GE(total_states, 50u);
}

}  // namespace
