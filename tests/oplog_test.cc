// Unit tests for the optimized operation log (§3.3): 64 B checksummed entries, DRAM
// tail, torn-entry detection, idempotent scan order.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/oplog.h"

namespace {

using common::kMiB;
using splitfs::LogEntry;
using splitfs::LogOp;
using splitfs::OpLog;

class OpLogTest : public ::testing::Test {
 protected:
  OpLogTest()
      : dev_(&ctx_, 128 * kMiB),
        kfs_(&dev_),
        log_(&kfs_, "/oplog", 64 * 1024) {}  // 1024 slots.

  LogEntry MakeEntry(uint64_t n) {
    LogEntry e;
    e.op = LogOp::kAppend;
    e.target_ino = 100 + n;
    e.file_off = n * 4096;
    e.staging_ino = 7;
    e.staging_off = n * 4096;
    e.len = 4096;
    return e;
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
  OpLog log_;
};

TEST_F(OpLogTest, EntryIsExactlyOneCacheLine) {
  static_assert(sizeof(LogEntry) == 64);
}

TEST_F(OpLogTest, SealAndValidate) {
  LogEntry e = MakeEntry(1);
  e.seq = 5;
  e.Seal();
  EXPECT_TRUE(e.ValidSealed());
  e.len = 8192;  // Tamper after sealing.
  EXPECT_FALSE(e.ValidSealed());
}

TEST_F(OpLogTest, ZeroEntryIsInvalid) {
  LogEntry zero;
  EXPECT_FALSE(zero.ValidSealed());
}

TEST_F(OpLogTest, AsyncRelinkOpsSurviveRecoveryScan) {
  // Regression: the scan's structural validation capped valid op codes at
  // kRenameTo, so the async-relink records (intent / done / intent-overwrite)
  // sealed fine but were silently dropped at recovery — losing exactly the
  // entries that make an acknowledged-but-unpublished fsync recoverable.
  for (LogOp op : {LogOp::kRelinkIntent, LogOp::kRelinkDone,
                   LogOp::kRelinkIntentOverwrite}) {
    LogEntry e = MakeEntry(static_cast<uint64_t>(op));
    e.op = op;
    ASSERT_TRUE(log_.Append(e));
  }
  auto entries = log_.ScanForRecovery();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].op, LogOp::kRelinkIntent);
  EXPECT_EQ(entries[1].op, LogOp::kRelinkDone);
  EXPECT_EQ(entries[2].op, LogOp::kRelinkIntentOverwrite);
  // Op codes past the known range are still structurally invalid.
  LogEntry rogue = MakeEntry(99);
  rogue.op = static_cast<LogOp>(static_cast<uint8_t>(splitfs::kMaxLogOp) + 1);
  rogue.seq = 1234;
  rogue.Seal();
  EXPECT_FALSE(rogue.ValidSealed());
}

TEST_F(OpLogTest, AppendAndScanRoundTrip) {
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(log_.Append(MakeEntry(i)));
  }
  auto entries = log_.ScanForRecovery();
  ASSERT_EQ(entries.size(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(entries[i].seq, i + 1);  // Sorted by sequence.
    EXPECT_EQ(entries[i].target_ino, 100 + i);
    EXPECT_TRUE(entries[i].ValidSealed());
  }
}

TEST_F(OpLogTest, AppendCostIsOneLineOneFence) {
  // §3.3: one 64 B nt-store + one fence + CAS + compose. Well under NOVA's
  // two-line/two-fence pattern (~260+ ns).
  log_.Append(MakeEntry(0));  // Warm.
  uint64_t t0 = ctx_.clock.Now();
  uint64_t f0 = ctx_.stats.fences();
  log_.Append(MakeEntry(1));
  EXPECT_EQ(ctx_.stats.fences() - f0, 1u);
  EXPECT_LT(ctx_.clock.Now() - t0, 250u);
}

TEST_F(OpLogTest, FullLogRejectsUntilReset) {
  for (uint64_t i = 0; i < log_.Capacity(); ++i) {
    ASSERT_TRUE(log_.Append(MakeEntry(i)));
  }
  EXPECT_FALSE(log_.Append(MakeEntry(9999)));
  EXPECT_TRUE(log_.NearlyFull());
  log_.Reset();
  EXPECT_TRUE(log_.Append(MakeEntry(1)));
  // Reset zeroed the area: only the new entry is found.
  EXPECT_EQ(log_.ScanForRecovery().size(), 1u);
}

TEST_F(OpLogTest, TornEntryIsDiscardedByScan) {
  dev_.EnableCrashTracking(true);
  ASSERT_TRUE(log_.Append(MakeEntry(0)));
  ASSERT_TRUE(log_.Append(MakeEntry(1)));
  // Entry 2's store gets torn: some of its cachelines never persist. One 64 B entry
  // is a single line, so simulate tearing by writing garbage into half of slot 2
  // directly (a torn line from a partially-evicted store).
  std::vector<ext4sim::Ext4Dax::DaxMapping> maps;
  int fd = kfs_.OpenByIno(log_.ino(), vfs::kRdWr);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(kfs_.DaxMap(fd, 0, 64 * 1024, &maps), 0);
  LogEntry e = MakeEntry(2);
  e.seq = 3;
  e.Seal();
  std::vector<uint8_t> torn(64);
  std::memcpy(torn.data(), &e, 64);
  torn[40] ^= 0xFF;  // Corrupt one byte after sealing: checksum must catch it.
  dev_.StoreNt(maps[0].dev_off + 2 * 64, torn.data(), 64, sim::PmWriteKind::kLog);
  dev_.Fence();
  kfs_.Close(fd);

  auto entries = log_.ScanForRecovery();
  ASSERT_EQ(entries.size(), 2u);  // The torn entry is silently dropped.
  EXPECT_EQ(entries[0].target_ino, 100u);
  EXPECT_EQ(entries[1].target_ino, 101u);
}

TEST_F(OpLogTest, TruncatedTailEntryRejectedByChecksum) {
  // The tail entry's 64 B store only partially drains before power loss: the crash
  // harness tears the line at 8-byte granularity. Recovery must keep the intact
  // prefix and reject the truncated tail on checksum, not entry length.
  dev_.EnableCrashTracking(true);
  ASSERT_TRUE(log_.Append(MakeEntry(0)));
  ASSERT_TRUE(log_.Append(MakeEntry(1)));
  ASSERT_TRUE(log_.Append(MakeEntry(2)));
  // Tear every line still pending at the crash: only the first half of each 64 B
  // store survives. Entries 0-2 already persisted at their append fences.
  std::vector<ext4sim::Ext4Dax::DaxMapping> maps;
  int fd = kfs_.OpenByIno(log_.ino(), vfs::kRdWr);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(kfs_.DaxMap(fd, 0, 64 * 1024, &maps), 0);
  LogEntry tail = MakeEntry(3);
  tail.seq = 4;
  tail.Seal();
  dev_.StoreNt(maps[0].dev_off + 3 * 64, &tail, 64, sim::PmWriteKind::kLog);
  // No fence: the store is un-persisted when the machine dies, and only its first
  // four 8-byte chunks drain.
  dev_.CrashWith([](uint64_t, uint64_t) { return static_cast<uint8_t>(0x0F); });
  kfs_.Close(fd);

  auto entries = log_.ScanForRecovery();
  ASSERT_EQ(entries.size(), 3u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, i + 1);
  }
}

TEST_F(OpLogTest, ChecksumValidButGarbageOpRejected) {
  // A checksum-valid slot whose op byte is outside the known vocabulary must not be
  // replayed: structural validation backs up the checksum.
  ASSERT_TRUE(log_.Append(MakeEntry(0)));
  std::vector<ext4sim::Ext4Dax::DaxMapping> maps;
  int fd = kfs_.OpenByIno(log_.ino(), vfs::kRdWr);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(kfs_.DaxMap(fd, 0, 64 * 1024, &maps), 0);
  LogEntry rogue = MakeEntry(1);
  rogue.seq = 2;
  rogue.op = static_cast<LogOp>(77);
  rogue.Seal();  // Checksum matches the garbage op.
  EXPECT_FALSE(rogue.ValidSealed());
  dev_.StoreNt(maps[0].dev_off + 1 * 64, &rogue, 64, sim::PmWriteKind::kLog);
  dev_.Fence();
  kfs_.Close(fd);

  auto entries = log_.ScanForRecovery();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].target_ino, 100u);
}

TEST_F(OpLogTest, DuplicateSequenceReplayedOnce) {
  ASSERT_TRUE(log_.Append(MakeEntry(0)));
  // Forge a second checksum-valid entry with the same sequence number in a later
  // slot; the scan must surface the sequence exactly once.
  std::vector<ext4sim::Ext4Dax::DaxMapping> maps;
  int fd = kfs_.OpenByIno(log_.ino(), vfs::kRdWr);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(kfs_.DaxMap(fd, 0, 64 * 1024, &maps), 0);
  LogEntry dup = MakeEntry(9);
  dup.seq = 1;
  dup.Seal();
  dev_.StoreNt(maps[0].dev_off + 5 * 64, &dup, 64, sim::PmWriteKind::kLog);
  dev_.Fence();
  kfs_.Close(fd);

  auto entries = log_.ScanForRecovery();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].seq, 1u);
}

TEST_F(OpLogTest, ScanIsIdempotent) {
  // Recovery may scan any number of times (double crash): results are identical and
  // the log contents are untouched by scanning.
  for (uint64_t i = 0; i < 7; ++i) {
    ASSERT_TRUE(log_.Append(MakeEntry(i)));
  }
  auto first = log_.ScanForRecovery();
  auto second = log_.ScanForRecovery();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(0, std::memcmp(&first[i], &second[i], sizeof(LogEntry)));
  }
}

TEST_F(OpLogTest, ConcurrentAppendsGetDistinctSlots) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LogEntry e = MakeEntry(static_cast<uint64_t>(t) * 1000 + i);
        ASSERT_TRUE(log_.Append(e));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  auto entries = log_.ScanForRecovery();
  EXPECT_EQ(entries.size(), static_cast<size_t>(kThreads * kPerThread));
  // Sequence numbers are unique and dense.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].seq, i + 1);
  }
}

}  // namespace
