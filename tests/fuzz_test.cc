// Property / fuzz tests over the whole stack:
//   * randomized op sequences must leave SplitFS (every mode) and ext4-DAX in
//     byte-identical visible states (§5.3's correctness methodology, randomized);
//   * crashes injected at random points during a strict-mode workload must always
//     recover to a state where every file is a consistent prefix of the operation
//     history (no torn data, no metadata corruption, no block leaks).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"
#include "src/ext4/fsck.h"

namespace {

using common::kBlockSize;
using common::kMiB;
using splitfs::Mode;

splitfs::Options SmallOpts(Mode m) {
  splitfs::Options o;
  o.mode = m;
  o.num_staging_files = 2;
  o.staging_file_bytes = 8 * kMiB;
  o.oplog_bytes = 1 * kMiB;
  return o;
}

// A deterministic random op driver: open/write/read/fsync/close/unlink/rename/
// truncate over a small set of paths. Applied identically to two file systems.
class OpDriver {
 public:
  explicit OpDriver(uint64_t seed) : rng_(seed) {}

  void Step(vfs::FileSystem* fs) {
    uint64_t dice = rng_.Uniform(100);
    std::string path = PathFor(rng_.Uniform(5));
    if (dice < 35) {  // Write somewhere.
      int fd = fs->Open(path, vfs::kRdWr | vfs::kCreate);
      ASSERT_GE(fd, 0);
      vfs::StatBuf st;
      fs->Fstat(fd, &st);
      uint64_t off = st.size > 0 && rng_.OneIn(2) ? rng_.Uniform(st.size) : st.size;
      std::vector<uint8_t> data(1 + rng_.Uniform(3 * kBlockSize),
                                static_cast<uint8_t>(rng_.Next()));
      ASSERT_EQ(fs->Pwrite(fd, data.data(), data.size(), off),
                static_cast<ssize_t>(data.size()));
      if (rng_.OneIn(3)) {
        ASSERT_EQ(fs->Fsync(fd), 0);
      }
      ASSERT_EQ(fs->Close(fd), 0);
    } else if (dice < 55) {  // Read (result ignored; must not crash/err).
      int fd = fs->Open(path, vfs::kRdOnly);
      if (fd >= 0) {
        std::vector<uint8_t> buf(2 * kBlockSize);
        fs->Pread(fd, buf.data(), buf.size(), rng_.Uniform(4 * kBlockSize));
        fs->Close(fd);
      }
    } else if (dice < 65) {
      fs->Unlink(path);
    } else if (dice < 75) {
      fs->Rename(path, PathFor(rng_.Uniform(5)));
    } else if (dice < 85) {  // Truncate.
      int fd = fs->Open(path, vfs::kRdWr);
      if (fd >= 0) {
        fs->Ftruncate(fd, rng_.Uniform(2 * kBlockSize));
        fs->Close(fd);
      }
    } else {  // fsync an open handle.
      int fd = fs->Open(path, vfs::kRdWr);
      if (fd >= 0) {
        fs->Fsync(fd);
        fs->Close(fd);
      }
    }
  }

 private:
  std::string PathFor(uint64_t n) { return "/fz" + std::to_string(n); }
  common::Rng rng_;
};

void FinalSyncAll(vfs::FileSystem* fs) {
  for (int i = 0; i < 5; ++i) {
    int fd = fs->Open("/fz" + std::to_string(i), vfs::kRdWr);
    if (fd >= 0) {
      fs->Fsync(fd);
      fs->Close(fd);
    }
  }
}

void ExpectSameState(vfs::FileSystem* a, vfs::FileSystem* b) {
  for (int i = 0; i < 5; ++i) {
    std::string path = "/fz" + std::to_string(i);
    vfs::StatBuf sa, sb;
    int ra = a->Stat(path, &sa);
    int rb = b->Stat(path, &sb);
    ASSERT_EQ(ra, rb) << path;
    if (ra != 0) {
      continue;
    }
    ASSERT_EQ(sa.size, sb.size) << path;
    if (sa.size == 0) {
      continue;
    }
    int fa = a->Open(path, vfs::kRdOnly);
    int fb = b->Open(path, vfs::kRdOnly);
    std::vector<uint8_t> ba(sa.size), bb(sb.size);
    ASSERT_EQ(a->Pread(fa, ba.data(), ba.size(), 0), static_cast<ssize_t>(ba.size()));
    ASSERT_EQ(b->Pread(fb, bb.data(), bb.size(), 0), static_cast<ssize_t>(bb.size()));
    EXPECT_EQ(ba, bb) << path;
    a->Close(fa);
    b->Close(fb);
  }
}

class EquivalenceFuzz : public ::testing::TestWithParam<std::tuple<Mode, uint64_t>> {};

TEST_P(EquivalenceFuzz, RandomOpsMatchExt4) {
  auto [mode, seed] = GetParam();
  sim::Context ctx_a, ctx_b;
  pmem::Device dev_a(&ctx_a, 512 * kMiB), dev_b(&ctx_b, 512 * kMiB);
  ext4sim::Ext4Dax ext4(&dev_a);
  ext4sim::Ext4Dax under(&dev_b);
  splitfs::SplitFs split(&under, SmallOpts(mode));

  OpDriver driver_a(seed), driver_b(seed);
  for (int i = 0; i < 120; ++i) {
    driver_a.Step(&ext4);
    driver_b.Step(&split);
  }
  FinalSyncAll(&ext4);
  FinalSyncAll(&split);
  ExpectSameState(&ext4, &split);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, EquivalenceFuzz,
    ::testing::Combine(::testing::Values(Mode::kPosix, Mode::kSync, Mode::kStrict),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const auto& info) {
      return std::string(ModeName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// --- Crash-point fuzzing -----------------------------------------------------------------

// Strict mode invariant: after a crash at ANY point, every file's content equals the
// result of applying a prefix of the completed operations, where a "completed"
// operation is atomic (all-or-nothing). We verify a weaker but checkable form: each
// file is EITHER absent or holds exactly k whole records for some k <= records
// written, with the right contents (records are numbered and checksummable).
class CrashFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashFuzz, StrictRecoversToConsistentPrefix) {
  uint64_t seed = GetParam();
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax kfs(&dev);
  splitfs::SplitFs fs(&kfs, SmallOpts(Mode::kStrict));
  dev.EnableCrashTracking(true);

  common::Rng rng(seed);
  constexpr int kFiles = 3;
  constexpr uint64_t kRecord = 512;
  int fds[kFiles];
  uint64_t written[kFiles] = {0, 0, 0};
  for (int i = 0; i < kFiles; ++i) {
    fds[i] = fs.Open("/cf" + std::to_string(i), vfs::kRdWr | vfs::kCreate);
    ASSERT_GE(fds[i], 0);
    fs.Fsync(fds[i]);
  }
  // Append numbered records; crash after a random number of operations.
  uint64_t crash_after = 5 + rng.Uniform(60);
  for (uint64_t op = 0; op < crash_after; ++op) {
    int f = static_cast<int>(rng.Uniform(kFiles));
    std::vector<uint8_t> rec(kRecord);
    for (size_t b = 0; b < rec.size(); ++b) {
      rec[b] = static_cast<uint8_t>(written[f] + b);  // Record id baked into bytes.
    }
    ASSERT_EQ(fs.Pwrite(fds[f], rec.data(), rec.size(), written[f] * kRecord),
              static_cast<ssize_t>(kRecord));
    ++written[f];
    if (rng.OneIn(8)) {
      fs.Fsync(fds[f]);
    }
  }

  common::Rng torn(seed * 31 + 7);
  dev.Crash(&torn);
  ASSERT_EQ(kfs.Recover(), 0);
  ASSERT_EQ(fs.Recover(), 0);

  // File-system integrity after recovery (the paper's blanket guarantee): no leaked
  // or aliased blocks, consistent directory graph.
  ext4sim::FsckReport fsck = ext4sim::RunFsck(&kfs);
  for (const auto& p : fsck.problems) {
    ADD_FAILURE() << "fsck: " << p;
  }
  ASSERT_TRUE(fsck.clean);

  for (int i = 0; i < kFiles; ++i) {
    std::string path = "/cf" + std::to_string(i);
    vfs::StatBuf st;
    ASSERT_EQ(fs.Stat(path, &st), 0) << path;
    // Whole records only: strict ops are atomic.
    ASSERT_EQ(st.size % kRecord, 0u) << path << " size " << st.size;
    uint64_t recovered = st.size / kRecord;
    ASSERT_LE(recovered, written[i]) << path;
    // Strict ops are synchronous: everything written must have survived.
    EXPECT_EQ(recovered, written[i]) << path;
    int fd = fs.Open(path, vfs::kRdOnly);
    std::vector<uint8_t> rec(kRecord);
    for (uint64_t r = 0; r < recovered; ++r) {
      ASSERT_EQ(fs.Pread(fd, rec.data(), rec.size(), r * kRecord),
                static_cast<ssize_t>(kRecord));
      for (size_t b = 0; b < rec.size(); ++b) {
        ASSERT_EQ(rec[b], static_cast<uint8_t>(r + b))
            << path << " record " << r << " byte " << b;
      }
    }
    fs.Close(fd);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzz, ::testing::Range<uint64_t>(1, 13));

}  // namespace
