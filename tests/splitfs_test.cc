// Functional tests for SplitFs (U-Split): data paths, staging, relink publication,
// modes, POSIX quirks (dup/lseek/fork/exec), tunables, and resource accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/split_fs.h"

namespace {

using common::kBlockSize;
using common::kMiB;
using splitfs::Mode;
using splitfs::Options;
using splitfs::SplitFs;

Options SmallOptions(Mode mode) {
  Options o;
  o.mode = mode;
  o.num_staging_files = 2;
  o.staging_file_bytes = 4 * kMiB;
  o.oplog_bytes = 1 * kMiB;
  return o;
}

class SplitFsTest : public ::testing::TestWithParam<Mode> {
 protected:
  SplitFsTest()
      : dev_(&ctx_, 512 * kMiB),
        kfs_(&dev_),
        fs_(std::make_unique<SplitFs>(&kfs_, SmallOptions(GetParam()))) {}

  std::vector<uint8_t> Pattern(size_t n, uint8_t seed) {
    std::vector<uint8_t> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = static_cast<uint8_t>(seed + i * 13);
    }
    return v;
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
  std::unique_ptr<SplitFs> fs_;
};

INSTANTIATE_TEST_SUITE_P(AllModes, SplitFsTest,
                         ::testing::Values(Mode::kPosix, Mode::kSync, Mode::kStrict),
                         [](const auto& info) { return ModeName(info.param); });

TEST_P(SplitFsTest, WriteReadRoundTrip) {
  int fd = fs_->Open("/f", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  auto data = Pattern(3 * kBlockSize + 123, 1);
  ASSERT_EQ(fs_->Pwrite(fd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(fs_->Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);  // Reads see staged appends before any fsync.
  EXPECT_EQ(fs_->Close(fd), 0);
}

TEST_P(SplitFsTest, AppendsAreStagedUntilFsync) {
  int fd = fs_->Open("/staged", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(2 * kBlockSize, 2);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  EXPECT_EQ(fs_->StagedBytes(), data.size());

  // The kernel file does not see the append yet...
  vfs::StatBuf kst;
  ASSERT_EQ(kfs_.Stat("/staged", &kst), 0);
  EXPECT_EQ(kst.size, 0u);
  // ...but the application does, through U-Split.
  vfs::StatBuf ust;
  ASSERT_EQ(fs_->Fstat(fd, &ust), 0);
  EXPECT_EQ(ust.size, data.size());

  ASSERT_EQ(fs_->Fsync(fd), 0);
  EXPECT_EQ(fs_->StagedBytes(), 0u);
  ASSERT_EQ(kfs_.Stat("/staged", &kst), 0);
  EXPECT_EQ(kst.size, data.size());  // Published by relink.
  EXPECT_GT(fs_->Relinks(), 0u);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, FsyncPublishesViaRelinkNotCopy) {
  int fd = fs_->Open("/nocopy", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(8 * kBlockSize, 3);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  uint64_t data_bytes_before_fsync = ctx_.stats.data_bytes();
  ASSERT_EQ(fs_->Fsync(fd), 0);
  // Block-aligned appends publish with zero additional data writes.
  EXPECT_EQ(ctx_.stats.data_bytes(), data_bytes_before_fsync);
  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(fs_->Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, UnalignedAppendPublishesCorrectly) {
  int fd = fs_->Open("/unaligned", vfs::kRdWr | vfs::kCreate);
  // Three unaligned appends: 100, 5000, 3000 bytes.
  auto a = Pattern(100, 4), b = Pattern(5000, 5), c = Pattern(3000, 6);
  fs_->Pwrite(fd, a.data(), a.size(), 0);
  fs_->Pwrite(fd, b.data(), b.size(), 100);
  fs_->Pwrite(fd, c.data(), c.size(), 5100);
  ASSERT_EQ(fs_->Fsync(fd), 0);

  std::vector<uint8_t> expect;
  expect.insert(expect.end(), a.begin(), a.end());
  expect.insert(expect.end(), b.begin(), b.end());
  expect.insert(expect.end(), c.begin(), c.end());
  // Verify through the KERNEL view: the published file must be byte-identical.
  int kfd = kfs_.Open("/unaligned", vfs::kRdWr);
  std::vector<uint8_t> back(expect.size());
  ASSERT_EQ(kfs_.Pread(kfd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, expect);
  vfs::StatBuf st;
  kfs_.Fstat(kfd, &st);
  EXPECT_EQ(st.size, 8100u);
  kfs_.Close(kfd);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, CloseAlsoPublishesStagedAppends) {
  int fd = fs_->Open("/onclose", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(kBlockSize, 7);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  ASSERT_EQ(fs_->Close(fd), 0);
  vfs::StatBuf kst;
  ASSERT_EQ(kfs_.Stat("/onclose", &kst), 0);
  EXPECT_EQ(kst.size, data.size());
}

TEST_P(SplitFsTest, OverwriteSemanticsPerMode) {
  int fd = fs_->Open("/ow", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(4 * kBlockSize, 8);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  ASSERT_EQ(fs_->Fsync(fd), 0);

  auto patch = Pattern(kBlockSize, 9);
  ASSERT_EQ(fs_->Pwrite(fd, patch.data(), patch.size(), kBlockSize),
            static_cast<ssize_t>(patch.size()));
  if (GetParam() == Mode::kStrict) {
    // Strict: COW through staging until the next fsync.
    EXPECT_EQ(fs_->StagedBytes(), patch.size());
  } else {
    // POSIX/sync: in place, immediately visible through the kernel too.
    EXPECT_EQ(fs_->StagedBytes(), 0u);
    int kfd = kfs_.Open("/ow", vfs::kRdWr);
    std::vector<uint8_t> kback(patch.size());
    kfs_.Pread(kfd, kback.data(), kback.size(), kBlockSize);
    EXPECT_EQ(kback, patch);
    kfs_.Close(kfd);
  }
  // Either way the application reads its own writes.
  std::vector<uint8_t> back(patch.size());
  fs_->Pread(fd, back.data(), back.size(), kBlockSize);
  EXPECT_EQ(back, patch);

  ASSERT_EQ(fs_->Fsync(fd), 0);
  back.assign(patch.size(), 0);
  fs_->Pread(fd, back.data(), back.size(), kBlockSize);
  EXPECT_EQ(back, patch);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, StraddlingWriteSplitsOverwriteAndAppend) {
  int fd = fs_->Open("/straddle", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(kBlockSize, 10);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  fs_->Fsync(fd);
  // Write 2 KB starting 1 KB before EOF: half overwrite, half append.
  auto w = Pattern(2048, 11);
  ASSERT_EQ(fs_->Pwrite(fd, w.data(), w.size(), kBlockSize - 1024), 2048);
  vfs::StatBuf st;
  fs_->Fstat(fd, &st);
  EXPECT_EQ(st.size, kBlockSize + 1024);
  fs_->Fsync(fd);
  std::vector<uint8_t> back(2048);
  fs_->Pread(fd, back.data(), 2048, kBlockSize - 1024);
  EXPECT_EQ(back, w);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, ReadAcrossStagedAndPublishedData) {
  int fd = fs_->Open("/mixed", vfs::kRdWr | vfs::kCreate);
  auto first = Pattern(kBlockSize, 12);
  fs_->Pwrite(fd, first.data(), first.size(), 0);
  fs_->Fsync(fd);  // Published.
  auto second = Pattern(kBlockSize, 13);
  fs_->Pwrite(fd, second.data(), second.size(), kBlockSize);  // Staged.

  std::vector<uint8_t> back(2 * kBlockSize);
  ASSERT_EQ(fs_->Pread(fd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(0, std::memcmp(back.data(), first.data(), kBlockSize));
  EXPECT_EQ(0, std::memcmp(back.data() + kBlockSize, second.data(), kBlockSize));
  fs_->Close(fd);
}

TEST_P(SplitFsTest, CursorWriteReadAndAppendFlag) {
  int fd = fs_->Open("/cursor", vfs::kRdWr | vfs::kCreate);
  EXPECT_EQ(fs_->Write(fd, "hello", 5), 5);
  EXPECT_EQ(fs_->Write(fd, " world", 6), 6);
  EXPECT_EQ(fs_->Lseek(fd, 0, vfs::Whence::kSet), 0);
  char buf[12] = {};
  EXPECT_EQ(fs_->Read(fd, buf, 11), 11);
  EXPECT_STREQ(buf, "hello world");
  fs_->Close(fd);

  int fd2 = fs_->Open("/cursor", vfs::kWrOnly | vfs::kAppend);
  EXPECT_EQ(fs_->Write(fd2, "!", 1), 1);
  vfs::StatBuf st;
  fs_->Fstat(fd2, &st);
  EXPECT_EQ(st.size, 12u);
  fs_->Close(fd2);
}

TEST_P(SplitFsTest, DupSharesOffsetAcrossDescriptors) {
  int fd = fs_->Open("/dup", vfs::kRdWr | vfs::kCreate);
  fs_->Write(fd, "abcdef", 6);
  fs_->Lseek(fd, 0, vfs::Whence::kSet);
  int fd2 = fs_->Dup(fd);
  ASSERT_GE(fd2, 0);
  char c;
  fs_->Read(fd, &c, 1);
  EXPECT_EQ(c, 'a');
  fs_->Read(fd2, &c, 1);
  EXPECT_EQ(c, 'b');  // §3.5: both threads see the shared offset move.
  fs_->Close(fd2);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, UnlinkDropsCachesAndFile) {
  int fd = fs_->Open("/gone", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(kBlockSize, 14);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  fs_->Fsync(fd);
  fs_->Close(fd);
  ASSERT_EQ(fs_->Unlink("/gone"), 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs_->Stat("/gone", &st), -ENOENT);
  EXPECT_EQ(kfs_.Stat("/gone", &st), -ENOENT);
  // Reopen with create starts fresh.
  fd = fs_->Open("/gone", vfs::kRdWr | vfs::kCreate);
  fs_->Fstat(fd, &st);
  EXPECT_EQ(st.size, 0u);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, TruncateInteractsWithStagedData) {
  int fd = fs_->Open("/trunc", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(2 * kBlockSize, 15);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  ASSERT_EQ(fs_->Ftruncate(fd, 100), 0);
  vfs::StatBuf st;
  fs_->Fstat(fd, &st);
  EXPECT_EQ(st.size, 100u);
  std::vector<uint8_t> back(100);
  ASSERT_EQ(fs_->Pread(fd, back.data(), 100, 0), 100);
  EXPECT_EQ(0, std::memcmp(back.data(), data.data(), 100));
  fs_->Close(fd);
}

TEST_P(SplitFsTest, OpenTruncResetsFile) {
  int fd = fs_->Open("/ot", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(kBlockSize, 16);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  fs_->Fsync(fd);
  fs_->Close(fd);
  int fd2 = fs_->Open("/ot", vfs::kRdWr | vfs::kTrunc);
  vfs::StatBuf st;
  fs_->Fstat(fd2, &st);
  EXPECT_EQ(st.size, 0u);
  EXPECT_EQ(fs_->Pread(fd2, data.data(), 10, 0), 0);
  fs_->Close(fd2);
}

TEST_P(SplitFsTest, RenamePreservesCachedState) {
  int fd = fs_->Open("/old", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(1000, 17);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  fs_->Fsync(fd);
  fs_->Close(fd);
  ASSERT_EQ(fs_->Rename("/old", "/new"), 0);
  vfs::StatBuf st;
  EXPECT_EQ(fs_->Stat("/old", &st), -ENOENT);
  ASSERT_EQ(fs_->Stat("/new", &st), 0);
  EXPECT_EQ(st.size, 1000u);
  int fd2 = fs_->Open("/new", vfs::kRdWr);
  std::vector<uint8_t> back(1000);
  ASSERT_EQ(fs_->Pread(fd2, back.data(), 1000, 0), 1000);
  EXPECT_EQ(back, data);
  fs_->Close(fd2);
}

TEST_P(SplitFsTest, RenameOverCachedDestinationTearsDownDisplacedState) {
  // Both source and destination cached: the displaced destination's state must be
  // torn down like Unlink's — staged bytes back to the pool, descriptors defunct —
  // not left live in the shards (a state/fd/staged-bytes leak otherwise).
  int dfd = fs_->Open("/victim", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(dfd, 0);
  auto staged = Pattern(1000, 31);
  // Append stays staged (no fsync): it must die with the displaced file.
  ASSERT_EQ(fs_->Pwrite(dfd, staged.data(), staged.size(), 0),
            static_cast<ssize_t>(staged.size()));
  EXPECT_GT(fs_->StagedBytes(), 0u);
  int sfd = fs_->Open("/winner", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(sfd, 0);
  auto data = Pattern(500, 32);
  ASSERT_EQ(fs_->Pwrite(sfd, data.data(), data.size(), 0),
            static_cast<ssize_t>(data.size()));
  ASSERT_EQ(fs_->Fsync(sfd), 0);
  ASSERT_EQ(fs_->Close(sfd), 0);

  ASSERT_EQ(fs_->Rename("/winner", "/victim"), 0);
  EXPECT_EQ(fs_->StagedBytes(), 0u);          // Displaced staged data released.
  std::vector<uint8_t> back(staged.size());
  EXPECT_EQ(fs_->Pread(dfd, back.data(), back.size(), 0), -EBADF);  // Defunct.
  fs_->Close(dfd);
  vfs::StatBuf st;
  ASSERT_EQ(fs_->Stat("/victim", &st), 0);
  EXPECT_EQ(st.size, data.size());
  int fd2 = fs_->Open("/victim", vfs::kRdWr);
  back.resize(data.size());
  ASSERT_EQ(fs_->Pread(fd2, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
  fs_->Close(fd2);
}

TEST_P(SplitFsTest, SequentialAppendsCoalesceIntoFewRelinks) {
  int fd = fs_->Open("/seq", vfs::kRdWr | vfs::kCreate);
  auto block = Pattern(kBlockSize, 18);
  for (int i = 0; i < 64; ++i) {
    fs_->Pwrite(fd, block.data(), kBlockSize, static_cast<uint64_t>(i) * kBlockSize);
  }
  uint64_t relinks_before = fs_->Relinks();
  ASSERT_EQ(fs_->Fsync(fd), 0);
  // 64 sequential appends merge into a handful of contiguous staged runs.
  EXPECT_LE(fs_->Relinks() - relinks_before, 4u);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, StagingPoolReplenishesInBackground) {
  int fd = fs_->Open("/big", vfs::kRdWr | vfs::kCreate);
  // Write more than the two initial 4 MB staging files can hold.
  auto chunk = Pattern(64 * common::kKiB, 19);
  uint64_t off = 0;
  for (int i = 0; i < 200; ++i) {  // 12.5 MB total.
    ASSERT_EQ(fs_->Pwrite(fd, chunk.data(), chunk.size(), off),
              static_cast<ssize_t>(chunk.size()));
    off += chunk.size();
  }
  EXPECT_GT(fs_->staging_pool().FilesCreated(), 2u);
  EXPECT_GT(fs_->staging_pool().BackgroundCreations(), 0u);
  ASSERT_EQ(fs_->Fsync(fd), 0);
  // Spot-check contents.
  std::vector<uint8_t> back(chunk.size());
  ASSERT_EQ(fs_->Pread(fd, back.data(), back.size(), 100 * chunk.size()),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, chunk);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, StatHidesRuntimeDirAndShowsStagedSize) {
  int fd = fs_->Open("/visible", vfs::kRdWr | vfs::kCreate);
  fs_->Pwrite(fd, "xyz", 3, 0);
  vfs::StatBuf st;
  ASSERT_EQ(fs_->Stat("/visible", &st), 0);
  EXPECT_EQ(st.size, 3u);  // Staged append included.
  std::vector<std::string> names;
  ASSERT_EQ(fs_->ReadDir("/", &names), 0);
  for (const auto& n : names) {
    EXPECT_NE("/" + n, fs_->kernel_fs() ? ".splitfs" : "");  // No runtime dir leak.
    EXPECT_NE(n, ".splitfs");
  }
  fs_->Close(fd);
}

TEST_P(SplitFsTest, ForkChildInheritsState) {
  int fd = fs_->Open("/forked", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(kBlockSize, 20);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  fs_->Fsync(fd);

  auto child = fs_->CloneForFork("child");
  int cfd = child->Open("/forked", vfs::kRdWr);
  ASSERT_GE(cfd, 0);
  std::vector<uint8_t> back(data.size());
  ASSERT_EQ(child->Pread(cfd, back.data(), back.size(), 0),
            static_cast<ssize_t>(back.size()));
  EXPECT_EQ(back, data);
  child->Close(cfd);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, ExecStateCarriesOverViaShmBlob) {
  int fd = fs_->Open("/execed", vfs::kRdWr | vfs::kCreate);
  auto data = Pattern(2000, 21);
  fs_->Pwrite(fd, data.data(), data.size(), 0);
  fs_->Fsync(fd);

  std::vector<uint8_t> blob = fs_->SaveForExec();
  auto restored = SplitFs::RestoreAfterExec(&kfs_, SmallOptions(GetParam()),
                                            "after-exec", blob);
  int rfd = restored->Open("/execed", vfs::kRdWr);
  ASSERT_GE(rfd, 0);
  vfs::StatBuf st;
  restored->Fstat(rfd, &st);
  EXPECT_EQ(st.size, 2000u);
  std::vector<uint8_t> back(2000);
  ASSERT_EQ(restored->Pread(rfd, back.data(), 2000, 0), 2000);
  EXPECT_EQ(back, data);
  restored->Close(rfd);
  fs_->Close(fd);
}

TEST_P(SplitFsTest, MemoryUsageIsBoundedAndReported) {
  for (int i = 0; i < 50; ++i) {
    std::string path = "/mem" + std::to_string(i);
    int fd = fs_->Open(path, vfs::kRdWr | vfs::kCreate);
    auto data = Pattern(kBlockSize, static_cast<uint8_t>(i));
    fs_->Pwrite(fd, data.data(), data.size(), 0);
    fs_->Fsync(fd);
    fs_->Close(fd);
  }
  uint64_t usage = fs_->MemoryUsageBytes();
  EXPECT_GT(usage, 0u);
  EXPECT_LT(usage, 100 * kMiB);  // §5.10: U-Split metadata stays under 100 MB.
}

// --- Mode-specific behaviour ---------------------------------------------------------------

TEST(SplitFsModes, StrictLogsOneEntryPerDataOp) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax kfs(&dev);
  SplitFs fs(&kfs, SmallOptions(Mode::kStrict));
  int fd = fs.Open("/logged", vfs::kRdWr | vfs::kCreate);
  auto block = std::vector<uint8_t>(kBlockSize, 7);
  uint64_t entries0 = fs.OpLogEntries();
  for (int i = 0; i < 10; ++i) {
    fs.Pwrite(fd, block.data(), kBlockSize, static_cast<uint64_t>(i) * kBlockSize);
  }
  EXPECT_EQ(fs.OpLogEntries() - entries0, 10u);
  fs.Close(fd);
}

TEST(SplitFsModes, PosixAndSyncDoNotLog) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax kfs(&dev);
  for (Mode m : {Mode::kPosix, Mode::kSync}) {
    SplitFs fs(&kfs, SmallOptions(m), std::string("nl-") + ModeName(m));
    std::string path = std::string("/nolog-") + ModeName(m);
    int fd = fs.Open(path, vfs::kRdWr | vfs::kCreate);
    auto block = std::vector<uint8_t>(kBlockSize, 7);
    fs.Pwrite(fd, block.data(), kBlockSize, 0);
    EXPECT_EQ(fs.OpLogEntries(), 0u);
    fs.Close(fd);
  }
}

TEST(SplitFsModes, OpLogCheckpointsWhenFull) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax kfs(&dev);
  Options o = SmallOptions(Mode::kStrict);
  o.oplog_bytes = 64 * 1024;  // 1024 entries.
  SplitFs fs(&kfs, o);
  int fd = fs.Open("/ckpt", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> cell(64, 1);
  for (int i = 0; i < 1500; ++i) {
    fs.Pwrite(fd, cell.data(), cell.size(), static_cast<uint64_t>(i) * cell.size());
  }
  EXPECT_GE(fs.Checkpoints(), 1u);
  // Data survives the checkpoint.
  std::vector<uint8_t> back(64);
  ASSERT_EQ(fs.Pread(fd, back.data(), 64, 700 * 64), 64);
  EXPECT_EQ(back, cell);
  fs.Close(fd);
}

TEST(SplitFsModes, ConcurrentInstancesWithDifferentModes) {
  // §3.2: applications with different consistency modes share one file system.
  sim::Context ctx;
  pmem::Device dev(&ctx, 768 * kMiB);
  ext4sim::Ext4Dax kfs(&dev);
  SplitFs posix_app(&kfs, SmallOptions(Mode::kPosix), "app-posix");
  SplitFs strict_app(&kfs, SmallOptions(Mode::kStrict), "app-strict");

  int fd1 = posix_app.Open("/shared-posix", vfs::kRdWr | vfs::kCreate);
  int fd2 = strict_app.Open("/shared-strict", vfs::kRdWr | vfs::kCreate);
  std::vector<uint8_t> a(kBlockSize, 0xA1), b(kBlockSize, 0xB2);
  posix_app.Pwrite(fd1, a.data(), a.size(), 0);
  strict_app.Pwrite(fd2, b.data(), b.size(), 0);
  posix_app.Fsync(fd1);
  strict_app.Fsync(fd2);

  // Cross-visibility after publication: each instance can read the other's file.
  int x1 = strict_app.Open("/shared-posix", vfs::kRdWr);
  std::vector<uint8_t> back(kBlockSize);
  ASSERT_EQ(strict_app.Pread(x1, back.data(), back.size(), 0),
            static_cast<ssize_t>(kBlockSize));
  EXPECT_EQ(back, a);
  strict_app.Close(x1);
  posix_app.Close(fd1);
  strict_app.Close(fd2);
}

// --- Tunables (§3.6) -------------------------------------------------------------------------

TEST(SplitFsTunables, LargerMmapSizeFewerRegions) {
  for (uint64_t mmap_size : {2 * kMiB, 16 * kMiB}) {
    sim::Context ctx;
    pmem::Device dev(&ctx, 512 * kMiB);
    ext4sim::Ext4Dax kfs(&dev);
    Options o = SmallOptions(Mode::kPosix);
    o.mmap_size = mmap_size;
    SplitFs fs(&kfs, o);
    int fd = fs.Open("/span", vfs::kRdWr | vfs::kCreate);
    std::vector<uint8_t> data(8 * kMiB, 5);
    fs.Pwrite(fd, data.data(), data.size(), 0);
    fs.Fsync(fd);
    // Force reads through mmaps across the whole file.
    std::vector<uint8_t> back(data.size());
    fs.Pread(fd, back.data(), back.size(), 0);
    EXPECT_EQ(back, data);
    fs.Close(fd);
  }
}

}  // namespace
