// Tests for the workload generators: determinism, mix ratios, and cross-FS state
// equivalence of the utility workloads (git/tar/rsync leave identical trees on ext4
// and SplitFS — the §5.3 correctness check applied to the metadata-heavy drivers).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/kv_lsm.h"
#include "src/common/bytes.h"
#include "src/core/split_fs.h"
#include "src/workloads/microbench.h"
#include "src/workloads/tpcc_lite.h"
#include "src/workloads/utilities.h"
#include "src/workloads/ycsb.h"

namespace {

using common::kBlockSize;
using common::kMiB;

TEST(YcsbTest, LoadPopulatesAllRecords) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax fs(&dev);
  apps::KvLsm kv(&fs, "/db");
  wl::YcsbConfig cfg;
  cfg.record_count = 500;
  cfg.op_count = 100;
  cfg.value_bytes = 64;
  wl::Ycsb ycsb(&kv, cfg);
  auto load = ycsb.Load(&ctx.clock);
  EXPECT_EQ(load.ops, 500u);
  EXPECT_GT(load.sim_ns, 0u);
  // Every loaded key resolves.
  EXPECT_TRUE(kv.Get("user0000000000000000").has_value());
  EXPECT_TRUE(kv.Get("user0000000000000499").has_value());
  EXPECT_FALSE(kv.Get("user0000000000000500").has_value());
}

TEST(YcsbTest, RunsAllMixes) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax fs(&dev);
  apps::KvLsmOptions kopts;
  kopts.clock = &ctx.clock;  // Read-only mixes on a memtable-resident dataset would
  apps::KvLsm kv(&fs, "/db", kopts);  // otherwise advance no simulated time at all.
  wl::YcsbConfig cfg;
  cfg.record_count = 300;
  cfg.op_count = 200;
  cfg.value_bytes = 64;
  cfg.scan_max_len = 10;
  wl::Ycsb ycsb(&kv, cfg);
  ycsb.Load(&ctx.clock);
  for (auto w : {wl::YcsbWorkload::kA, wl::YcsbWorkload::kB, wl::YcsbWorkload::kC,
                 wl::YcsbWorkload::kD, wl::YcsbWorkload::kE, wl::YcsbWorkload::kF}) {
    auto r = ycsb.Run(w, &ctx.clock);
    EXPECT_EQ(r.ops, 200u) << wl::YcsbName(w);
    EXPECT_GT(r.Kops(), 0.0) << wl::YcsbName(w);
  }
}

TEST(YcsbTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Context ctx;
    pmem::Device dev(&ctx, 512 * kMiB);
    ext4sim::Ext4Dax fs(&dev);
    apps::KvLsm kv(&fs, "/db");
    wl::YcsbConfig cfg;
    cfg.record_count = 200;
    cfg.op_count = 300;
    cfg.value_bytes = 64;
    wl::Ycsb ycsb(&kv, cfg);
    ycsb.Load(&ctx.clock);
    ycsb.Run(wl::YcsbWorkload::kA, &ctx.clock);
    return ctx.clock.Now();
  };
  EXPECT_EQ(run_once(), run_once());  // Same seed, same simulated time.
}

TEST(TpccTest, TransactionsCommitAndCount) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax fs(&dev);
  apps::WalDb db(&fs, "/tpcc");
  wl::TpccConfig cfg;
  cfg.warehouses = 2;
  wl::TpccLite tpcc(&db, cfg);
  tpcc.Load(&ctx.clock);
  auto r = tpcc.Run(300, &ctx.clock);
  EXPECT_EQ(r.txns, 300u);
  EXPECT_GT(r.Ktps(), 0.0);
  // The standard mix has ~45% New-Order.
  EXPECT_GT(tpcc.NewOrders(), 90u);
  EXPECT_LT(tpcc.NewOrders(), 200u);
}

TEST(VarmailTest, MeasuresEverySyscallClass) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax fs(&dev);
  auto lat = wl::RunVarmail(&fs, &ctx.clock, 20, "/vm");
  for (const char* call : {"open", "close", "append", "fsync", "read", "unlink"}) {
    ASSERT_TRUE(lat.mean_ns.count(call)) << call;
    EXPECT_GT(lat.mean_ns[call], 0.0) << call;
  }
  // Sanity: ext4 fsync (journal commit + barrier) dwarfs close.
  EXPECT_GT(lat.mean_ns["fsync"], lat.mean_ns["close"]);
}

TEST(MicrobenchTest, AppendWritesExpectedBytes) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax fs(&dev);
  auto r = wl::RunAppend(&fs, &ctx.clock, "/a", 1 * kMiB, kBlockSize, 10);
  EXPECT_EQ(r.ops, 256u);
  EXPECT_EQ(r.bytes, 1 * kMiB);
  vfs::StatBuf st;
  ASSERT_EQ(fs.Stat("/a", &st), 0);
  EXPECT_EQ(st.size, 1 * kMiB);
}

TEST(MicrobenchTest, ReadsRequirePreparedFile) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 512 * kMiB);
  ext4sim::Ext4Dax fs(&dev);
  wl::PrepareFile(&fs, "/r", 2 * kMiB);
  auto seq = wl::RunSeqRead(&fs, &ctx.clock, "/r", 2 * kMiB, kBlockSize);
  EXPECT_EQ(seq.ops, 512u);
  auto rnd = wl::RunRandRead(&fs, &ctx.clock, "/r", 2 * kMiB, kBlockSize, 100, 3);
  EXPECT_EQ(rnd.ops, 100u);
  // Random 4K reads are slower per op than streaming sequential reads.
  EXPECT_GT(rnd.NsPerOp(), seq.NsPerOp());
}

class UtilityEquivalenceTest : public ::testing::Test {
 protected:
  // Runs `work` against both ext4 and SplitFS-POSIX worlds and compares the full
  // resulting directory trees byte for byte.
  template <typename Work>
  void RunAndCompare(Work work) {
    sim::Context ctx_a, ctx_b;
    pmem::Device dev_a(&ctx_a, 768 * kMiB), dev_b(&ctx_b, 768 * kMiB);
    ext4sim::Ext4Dax ext4(&dev_a);
    ext4sim::Ext4Dax under(&dev_b);
    splitfs::Options o;
    o.num_staging_files = 2;
    o.staging_file_bytes = 8 * kMiB;
    splitfs::SplitFs split(&under, o);

    work(static_cast<vfs::FileSystem*>(&ext4), &ctx_a.clock);
    work(static_cast<vfs::FileSystem*>(&split), &ctx_b.clock);
    CompareTrees(&ext4, &split, "/");
  }

  void CompareTrees(vfs::FileSystem* a, vfs::FileSystem* b, const std::string& dir) {
    std::vector<std::string> names_a, names_b;
    ASSERT_EQ(a->ReadDir(dir, &names_a), 0) << dir;
    ASSERT_EQ(b->ReadDir(dir, &names_b), 0) << dir;
    ASSERT_EQ(names_a, names_b) << dir;
    for (const auto& name : names_a) {
      std::string path = dir == "/" ? "/" + name : dir + "/" + name;
      vfs::StatBuf sa, sb;
      ASSERT_EQ(a->Stat(path, &sa), 0) << path;
      ASSERT_EQ(b->Stat(path, &sb), 0) << path;
      ASSERT_EQ(sa.type, sb.type) << path;
      if (sa.type == vfs::FileType::kDirectory) {
        CompareTrees(a, b, path);
        continue;
      }
      ASSERT_EQ(sa.size, sb.size) << path;
      int fa = a->Open(path, vfs::kRdOnly);
      int fb = b->Open(path, vfs::kRdOnly);
      ASSERT_GE(fa, 0) << path;
      ASSERT_GE(fb, 0) << path;
      std::vector<uint8_t> ba(sa.size), bb(sb.size);
      if (sa.size > 0) {
        ASSERT_EQ(a->Pread(fa, ba.data(), ba.size(), 0), static_cast<ssize_t>(ba.size()));
        ASSERT_EQ(b->Pread(fb, bb.data(), bb.size(), 0), static_cast<ssize_t>(bb.size()));
      }
      EXPECT_EQ(ba, bb) << path;
      a->Close(fa);
      b->Close(fb);
    }
  }

  wl::TreeSpec spec_ = [] {
    wl::TreeSpec s;
    s.dirs = 4;
    s.files_per_dir = 6;
    s.mean_file_bytes = 3000;
    return s;
  }();
};

TEST_F(UtilityEquivalenceTest, GitLeavesIdenticalState) {
  RunAndCompare([this](vfs::FileSystem* fs, sim::Clock* clock) {
    wl::BuildTree(fs, clock, "/src", spec_);
    wl::RunGit(fs, clock, "/src", "/git", spec_, /*rounds=*/2);
  });
}

TEST_F(UtilityEquivalenceTest, TarLeavesIdenticalState) {
  RunAndCompare([this](vfs::FileSystem* fs, sim::Clock* clock) {
    wl::BuildTree(fs, clock, "/src", spec_);
    wl::RunTar(fs, clock, "/src", "/a.tar", spec_);
  });
}

TEST_F(UtilityEquivalenceTest, RsyncLeavesIdenticalState) {
  RunAndCompare([this](vfs::FileSystem* fs, sim::Clock* clock) {
    wl::BuildTree(fs, clock, "/src", spec_);
    wl::RunRsync(fs, clock, "/src", "/dst", spec_);
  });
}

}  // namespace
