// Unit tests for the collection-of-mmaps cache and the staging-file pool.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/bytes.h"
#include "src/core/mmap_cache.h"
#include "src/core/split_fs.h"
#include "src/core/staging.h"

namespace {

using common::kBlockSize;
using common::kMiB;

class MmapCacheTest : public ::testing::Test {
 protected:
  MmapCacheTest() : dev_(&ctx_, 256 * kMiB), kfs_(&dev_), cache_(&kfs_, 2 * kMiB) {}

  int MakeFile(const std::string& path, uint64_t bytes) {
    int fd = kfs_.Open(path, vfs::kRdWr | vfs::kCreate);
    std::vector<uint8_t> buf(bytes, 0xAB);
    kfs_.Pwrite(fd, buf.data(), bytes, 0);
    return fd;
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
  splitfs::MmapCache cache_;
};

TEST_F(MmapCacheTest, TranslateMissThenHit) {
  int fd = MakeFile("/a", 64 * 1024);
  vfs::Ino ino = kfs_.InoOf(fd);
  EXPECT_FALSE(cache_.Translate(ino, 0).has_value());
  ASSERT_TRUE(cache_.EnsureRegion(ino, fd, 0));
  auto hit = cache_.Translate(ino, 4096);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GT(hit->len, 0u);
  // The translation points at the file's real blocks.
  std::vector<ext4sim::Ext4Dax::DaxMapping> maps;
  kfs_.DaxMap(fd, 4096, 64, &maps);
  ASSERT_FALSE(maps.empty());
  EXPECT_EQ(hit->dev_off, maps[0].dev_off);
}

TEST_F(MmapCacheTest, RegionCreationChargesMmapAndHugeFault) {
  int fd = MakeFile("/b", 64 * 1024);
  vfs::Ino ino = kfs_.InoOf(fd);
  uint64_t t0 = ctx_.clock.Now();
  uint64_t faults0 = ctx_.stats.page_faults();
  cache_.EnsureRegion(ino, fd, 0);
  EXPECT_GE(ctx_.clock.Now() - t0,
            ctx_.model.mmap_syscall_ns + ctx_.model.huge_page_fault_ns);
  EXPECT_EQ(ctx_.stats.page_faults() - faults0, 1u);  // One 2 MB huge page.
  // Second call: cached, near-free.
  t0 = ctx_.clock.Now();
  cache_.EnsureRegion(ino, fd, 4096);
  EXPECT_LT(ctx_.clock.Now() - t0, 100u);
}

TEST_F(MmapCacheTest, InsertPiecesIsFreeAndMerges) {
  vfs::Ino ino = 42;
  cache_.InsertPieces(ino, {{0, 1 * kMiB, 4096}});
  cache_.InsertPieces(ino, {{4096, 1 * kMiB + 4096, 4096}});  // Contiguous.
  auto hit = cache_.Translate(ino, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->len, 8192u);  // Merged into one piece: one latency class per run.
}

TEST_F(MmapCacheTest, NonContiguousPiecesStaySeparate) {
  vfs::Ino ino = 43;
  cache_.InsertPieces(ino, {{0, 1 * kMiB, 4096}});
  cache_.InsertPieces(ino, {{4096, 9 * kMiB, 4096}});  // Device-discontiguous.
  auto hit = cache_.Translate(ino, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->len, 4096u);
  auto hit2 = cache_.Translate(ino, 4096);
  ASSERT_TRUE(hit2.has_value());
  EXPECT_EQ(hit2->dev_off, 9 * kMiB);
}

TEST_F(MmapCacheTest, OverlappingInsertKeepsExistingAuthoritative) {
  vfs::Ino ino = 44;
  cache_.InsertPieces(ino, {{0, 1 * kMiB, 8192}});
  cache_.InsertPieces(ino, {{4096, 5 * kMiB, 8192}});  // Overlaps [4096, 8192).
  auto hit = cache_.Translate(ino, 4096);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->dev_off, 1 * kMiB + 4096);  // Original mapping untouched.
  auto tail = cache_.Translate(ino, 8192);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->dev_off, 5 * kMiB + 4096);  // New data beyond the overlap.
}

TEST_F(MmapCacheTest, InvalidateRangeSplitsPieces) {
  vfs::Ino ino = 45;
  cache_.InsertPieces(ino, {{0, 1 * kMiB, 3 * 4096}});
  cache_.InvalidateRange(ino, 4096, 4096);  // Carve the middle block out.
  EXPECT_TRUE(cache_.Translate(ino, 0).has_value());
  EXPECT_FALSE(cache_.Translate(ino, 4096).has_value());
  auto right = cache_.Translate(ino, 8192);
  ASSERT_TRUE(right.has_value());
  EXPECT_EQ(right->dev_off, 1 * kMiB + 8192);
}

TEST_F(MmapCacheTest, InvalidateFileChargesMunmapPerRegion) {
  int fd = MakeFile("/c", 6 * kMiB);
  vfs::Ino ino = kfs_.InoOf(fd);
  cache_.EnsureRegion(ino, fd, 0);
  cache_.EnsureRegion(ino, fd, 2 * kMiB);
  cache_.EnsureRegion(ino, fd, 4 * kMiB);
  uint64_t t0 = ctx_.clock.Now();
  cache_.InvalidateFile(ino);
  EXPECT_GE(ctx_.clock.Now() - t0, 3 * ctx_.model.munmap_ns);
  EXPECT_FALSE(cache_.Translate(ino, 0).has_value());
}

class StagingTest : public ::testing::Test {
 protected:
  StagingTest() : dev_(&ctx_, 256 * kMiB), kfs_(&dev_), cache_(&kfs_, 2 * kMiB) {
    opts_.num_staging_files = 2;
    opts_.staging_file_bytes = 4 * kMiB;
    pool_ = std::make_unique<splitfs::StagingPool>(&kfs_, &cache_, opts_, "t");
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
  splitfs::MmapCache cache_;
  splitfs::Options opts_;
  std::unique_ptr<splitfs::StagingPool> pool_;
};

TEST_F(StagingTest, AllocationsHonorBlockAlignmentModulus) {
  std::vector<splitfs::StagingAlloc> a;
  ASSERT_TRUE(pool_->Allocate(100, /*align_mod=*/0, &a));
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].staging_off % kBlockSize, 0u);

  std::vector<splitfs::StagingAlloc> b;
  ASSERT_TRUE(pool_->Allocate(100, /*align_mod=*/700, &b));
  EXPECT_EQ(b[0].staging_off % kBlockSize, 700u);
  // The new allocation never shares a block with the previous one.
  EXPECT_GE(b[0].staging_off, common::AlignUp(a[0].staging_off + a[0].len, kBlockSize));
}

TEST_F(StagingTest, ExtendInPlaceOnlyAtBumpPointer) {
  std::vector<splitfs::StagingAlloc> a;
  ASSERT_TRUE(pool_->Allocate(4096, 0, &a));
  splitfs::StagingAlloc alloc = a[0];
  EXPECT_TRUE(pool_->ExtendInPlace(&alloc, 4096));
  EXPECT_EQ(alloc.len, 8192u);
  // After another allocation intervenes, extension must fail.
  std::vector<splitfs::StagingAlloc> c;
  ASSERT_TRUE(pool_->Allocate(4096, 0, &c));
  EXPECT_FALSE(pool_->ExtendInPlace(&alloc, 4096));
}

TEST_F(StagingTest, ExhaustionTriggersBackgroundReplenishment) {
  std::vector<splitfs::StagingAlloc> a;
  // Consume more than both initial files.
  ASSERT_TRUE(pool_->Allocate(9 * kMiB, 0, &a));
  EXPECT_GT(pool_->FilesCreated(), 2u);
  EXPECT_GT(pool_->BackgroundCreations(), 0u);
  // Every returned piece is within a staging file's pre-allocated range.
  for (const auto& piece : a) {
    EXPECT_LE(piece.staging_off + piece.len, opts_.staging_file_bytes);
    EXPECT_GT(piece.len, 0u);
  }
}

TEST_F(StagingTest, BackgroundCreationDoesNotAdvanceForegroundClock) {
  std::vector<splitfs::StagingAlloc> a;
  ASSERT_TRUE(pool_->Allocate(4 * kMiB - 4096, 0, &a));  // Nearly drain file 1.
  uint64_t t0 = ctx_.clock.Now();
  std::vector<splitfs::StagingAlloc> b;
  ASSERT_TRUE(pool_->Allocate(8192, 0, &b));  // Crosses into file 2 + replenish.
  // The replenishment (create + fallocate + map of a 4 MB file) would cost far more
  // than this if charged to the foreground.
  EXPECT_LT(ctx_.clock.Now() - t0, 50000u);
  EXPECT_GT(pool_->BackgroundCreations(), 0u);
}

TEST_F(StagingTest, ConsumedFilesRetireOnceReleased) {
  // Consume several pool files, returning every allocation as if published. The pool
  // must retire (close + unlink) each consumed file instead of leaking it.
  std::vector<splitfs::StagingAlloc> all;
  for (int i = 0; i < 12; ++i) {
    std::vector<splitfs::StagingAlloc> a;
    ASSERT_TRUE(pool_->Allocate(kMiB, 0, &a));
    for (const auto& piece : a) {
      pool_->Release(piece);
    }
  }
  EXPECT_GT(pool_->FilesCreated(), 3u);
  EXPECT_GT(pool_->FilesRetired(), 0u);
  // The pool never holds more than the configured working set plus the file being
  // replaced: consumed-but-referenced files are gone once their bytes came back.
  EXPECT_LE(pool_->LiveFiles(), uint64_t{opts_.num_staging_files} + 1);
  // The retired files are really unlinked from the runtime directory.
  std::vector<std::string> names;
  ASSERT_EQ(kfs_.ReadDir("/.splitfs/stage-t", &names), 0);
  EXPECT_EQ(names.size(), pool_->LiveFiles());
}

TEST_F(StagingTest, UnreleasedRangesKeepConsumedFileAlive) {
  std::vector<splitfs::StagingAlloc> held;
  ASSERT_TRUE(pool_->Allocate(4 * kMiB, 0, &held));  // Exactly file 1, kept staged.
  std::vector<splitfs::StagingAlloc> churn;
  ASSERT_TRUE(pool_->Allocate(4 * kMiB, 0, &churn));  // Exhausts file 2.
  for (const auto& piece : churn) {
    pool_->Release(piece);  // Published immediately.
  }
  uint64_t retired_before = pool_->FilesRetired();
  // The next allocation pops the exhausted, fully-released file 2 and retires it;
  // file 1 must survive, its ranges are still staged.
  std::vector<splitfs::StagingAlloc> more;
  ASSERT_TRUE(pool_->Allocate(4096, 0, &more));
  EXPECT_GT(pool_->FilesRetired(), retired_before);
  int fd = kfs_.OpenByIno(held.front().staging_ino, vfs::kRdWr);
  EXPECT_GE(fd, 0) << "staging file with un-published ranges was deleted";
  if (fd >= 0) {
    kfs_.Close(fd);
  }
}

// End-to-end leak regression through SplitFs: publish-heavy append traffic across
// many pool files must not accumulate staging files or descriptors (the header
// contract: close/unlink release staged extents).
TEST(SplitFsStagingLeak, PublishHeavyWorkloadRetiresConsumedFiles) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  ext4sim::Ext4Dax kfs(&dev);
  splitfs::Options o;
  o.num_staging_files = 2;
  o.staging_file_bytes = kMiB;
  splitfs::SplitFs fs(&kfs, o);

  int fd = fs.Open("/big", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  std::vector<uint8_t> chunk(128 * 1024, 0xCD);
  uint64_t off = 0;
  for (int i = 0; i < 64; ++i) {  // 8 MB staged total = 8 consumed pool files.
    ASSERT_EQ(fs.Pwrite(fd, chunk.data(), chunk.size(), off),
              static_cast<ssize_t>(chunk.size()));
    off += chunk.size();
    if (i % 4 == 3) {
      ASSERT_EQ(fs.Fsync(fd), 0);
    }
  }
  ASSERT_EQ(fs.Close(fd), 0);
  const splitfs::StagingPool& pool = fs.staging_pool();
  EXPECT_GT(pool.FilesCreated(), 4u);
  EXPECT_GT(pool.FilesRetired(), 0u);
  EXPECT_LE(pool.LiveFiles(), uint64_t{o.num_staging_files} + 1);
}

TEST(SplitFsStagingLeak, UnlinkReturnsStagedBytesToPool) {
  sim::Context ctx;
  pmem::Device dev(&ctx, 256 * kMiB);
  ext4sim::Ext4Dax kfs(&dev);
  splitfs::Options o;
  o.num_staging_files = 2;
  o.staging_file_bytes = kMiB;
  splitfs::SplitFs fs(&kfs, o);

  // Stage more than one pool file's worth without ever publishing, then unlink.
  int fd = fs.Open("/doomed", vfs::kRdWr | vfs::kCreate);
  ASSERT_GE(fd, 0);
  std::vector<uint8_t> chunk(256 * 1024, 0xEE);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(fs.Pwrite(fd, chunk.data(), chunk.size(), i * chunk.size()),
              static_cast<ssize_t>(chunk.size()));
  }
  ASSERT_EQ(fs.Close(fd), 0);  // Publishes (close publishes staged appends).
  fd = fs.Open("/doomed2", vfs::kRdWr | vfs::kCreate);
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(fs.Pwrite(fd, chunk.data(), chunk.size(), i * chunk.size()),
              static_cast<ssize_t>(chunk.size()));
  }
  ASSERT_EQ(fs.Unlink("/doomed2"), 0);  // Staged data dies with the file.
  const splitfs::StagingPool& pool = fs.staging_pool();
  EXPECT_LE(pool.LiveFiles(), uint64_t{o.num_staging_files} + 1);
  EXPECT_GT(pool.FilesRetired(), 0u);
}

}  // namespace
