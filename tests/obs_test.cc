// src/obs unit + concurrency tests: histogram bucket math and merge algebra, tracer
// ring wraparound and nesting, multi-writer recording under TSan, and the metrics
// registry's snapshot discipline (each gauge evaluated exactly once per dump, dumps
// racing mutating gauges cleanly).
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/histogram.h"
#include "src/obs/obs.h"
#include "src/sim/context.h"

namespace {

// --- LatencyHistogram -----------------------------------------------------------------

TEST(Histogram, BucketBoundsArePowerOfTwoByBitWidth) {
  // Bucket i holds values of bit width i: 0 -> {0}, 1 -> {1}, 2 -> [2,3], ...
  EXPECT_EQ(obs::LatencyHistogram::BucketOf(0), 0);
  EXPECT_EQ(obs::LatencyHistogram::BucketOf(1), 1);
  EXPECT_EQ(obs::LatencyHistogram::BucketOf(2), 2);
  EXPECT_EQ(obs::LatencyHistogram::BucketOf(3), 2);
  EXPECT_EQ(obs::LatencyHistogram::BucketOf(4), 3);
  EXPECT_EQ(obs::LatencyHistogram::BucketOf(7), 3);
  EXPECT_EQ(obs::LatencyHistogram::BucketOf(8), 4);
  EXPECT_EQ(obs::LatencyHistogram::BucketOf(UINT64_MAX),
            obs::LatencyHistogram::kBuckets - 1);

  EXPECT_EQ(obs::LatencyHistogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(obs::LatencyHistogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(obs::LatencyHistogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(obs::LatencyHistogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(obs::LatencyHistogram::BucketUpperBound(obs::LatencyHistogram::kBuckets - 1),
            UINT64_MAX);
  // Every value lands in the bucket whose bounds contain it.
  for (uint64_t v : {0ull, 1ull, 5ull, 127ull, 128ull, 4096ull, 1ull << 40}) {
    int b = obs::LatencyHistogram::BucketOf(v);
    EXPECT_LE(v, obs::LatencyHistogram::BucketUpperBound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, obs::LatencyHistogram::BucketUpperBound(b - 1)) << v;
    }
  }
}

TEST(Histogram, PercentileIsValidUpperBoundAndP100Exact) {
  obs::LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_EQ(h.Sum(), 1000u * 1001u / 2);
  EXPECT_DOUBLE_EQ(h.MeanNs(), 500.5);
  // Quantiles are upper bounds within one power of two, and p100 is exact.
  EXPECT_GE(h.Percentile(0.50), 500u);
  EXPECT_LE(h.Percentile(0.50), 1023u);
  EXPECT_GE(h.Percentile(0.99), 990u);
  EXPECT_EQ(h.Percentile(1.0), 1000u);
  // Empty histogram: all zeros.
  obs::LatencyHistogram empty;
  EXPECT_EQ(empty.Percentile(0.5), 0u);
  EXPECT_EQ(empty.Count(), 0u);
}

TEST(Histogram, MergeIsExactAndAssociative) {
  obs::LatencyHistogram a, b, c;
  for (uint64_t v = 1; v < 200; v += 3) {
    a.Record(v * 7);
  }
  for (uint64_t v = 1; v < 150; v += 2) {
    b.Record(v * 31);
  }
  for (uint64_t v = 1; v < 100; ++v) {
    c.Record(v * 1001);
  }

  // (a + b) + c
  obs::LatencyHistogram ab = a;
  ab.MergeFrom(b);
  obs::LatencyHistogram ab_c = ab;
  ab_c.MergeFrom(c);
  // a + (b + c)
  obs::LatencyHistogram bc = b;
  bc.MergeFrom(c);
  obs::LatencyHistogram a_bc = a;
  a_bc.MergeFrom(bc);

  EXPECT_EQ(ab_c.Count(), a.Count() + b.Count() + c.Count());
  EXPECT_EQ(ab_c.Sum(), a.Sum() + b.Sum() + c.Sum());
  EXPECT_EQ(ab_c.Max(), std::max({a.Max(), b.Max(), c.Max()}));
  for (int i = 0; i < obs::LatencyHistogram::kBuckets; ++i) {
    EXPECT_EQ(ab_c.BucketCount(i), a_bc.BucketCount(i)) << "bucket " << i;
    EXPECT_EQ(ab_c.BucketCount(i),
              a.BucketCount(i) + b.BucketCount(i) + c.BucketCount(i))
        << "bucket " << i;
  }
  EXPECT_EQ(ab_c.Sum(), a_bc.Sum());
  EXPECT_EQ(ab_c.Max(), a_bc.Max());
}

// --- Tracer ---------------------------------------------------------------------------

TEST(Tracer, DisabledTracerRecordsNothing) {
  sim::Context ctx;
  obs::Tracer tracer;
  {
    obs::ScopedSpan span(&tracer, &ctx.clock, "op", "noop");
    EXPECT_FALSE(span.active());
  }
  obs::ScopedSpan null_span(nullptr, &ctx.clock, "op", "noop");
  EXPECT_FALSE(null_span.active());
  EXPECT_EQ(tracer.SpanCount(), 0u);
}

TEST(Tracer, RingWraparoundDropsAndCounts) {
  sim::Context ctx;
  obs::Tracer tracer;
  tracer.Enable(/*ring_capacity=*/8);
  for (int i = 0; i < 12; ++i) {
    obs::ScopedSpan span(&tracer, &ctx.clock, "op", "filler");
    ctx.clock.Advance(10);
  }
  // A full ring drops (and counts) instead of overwriting: the first 8 survive.
  EXPECT_EQ(tracer.SpanCount(), 8u);
  EXPECT_EQ(tracer.Drops(), 4u);
  // Reset clears both.
  tracer.Reset();
  EXPECT_EQ(tracer.SpanCount(), 0u);
  EXPECT_EQ(tracer.Drops(), 0u);
}

TEST(Tracer, SpanNestingDepthsBalance) {
  sim::Context ctx;
  obs::Tracer tracer;
  tracer.Enable();
  {
    obs::ScopedSpan outer(&tracer, &ctx.clock, "op", "outer");
    ctx.clock.Advance(100);
    {
      obs::ScopedSpan mid(&tracer, &ctx.clock, "phase", "mid");
      ctx.clock.Advance(100);
      obs::ScopedSpan inner(&tracer, &ctx.clock, "phase", "inner");
      ctx.clock.Advance(100);
    }
    ctx.clock.Advance(100);
  }
  EXPECT_EQ(tracer.CurrentDepthForTest(), 0u);
  ASSERT_EQ(tracer.SpanCount(), 3u);
  uint32_t max_depth = 0;
  uint64_t top_level = 0;
  tracer.ForEachSpan([&](const obs::SpanRecord& s) {
    EXPECT_GE(s.end_ns, s.start_ns);
    max_depth = std::max(max_depth, s.depth);
    if (s.depth == 0) {
      ++top_level;
      EXPECT_STREQ(s.name, "outer");
      EXPECT_EQ(s.end_ns - s.start_ns, 400u);
    }
  });
  EXPECT_EQ(max_depth, 2u);
  EXPECT_EQ(top_level, 1u);
  EXPECT_EQ(tracer.TopLevelSpanNs(), 400u);
}

TEST(Tracer, OffClockSuppressesSpans) {
  sim::Context ctx;
  obs::Tracer tracer;
  tracer.Enable();
  {
    sim::ScopedOffClock off(&ctx.clock);
    obs::ScopedSpan span(&tracer, &ctx.clock, "op", "rewound");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(tracer.SpanCount(), 0u);
}

// Multi-writer stress: every thread records into its own ring concurrently; the
// export after the join sees exactly the published spans. Run under TSan by the
// concurrency label.
TEST(Tracer, ConcurrentMultiWriterRecording) {
  sim::Context ctx;
  obs::Tracer tracer;
  tracer.Enable(/*ring_capacity=*/1 << 12);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&ctx, &tracer] {
      sim::Clock::Lane lane(&ctx.clock);
      for (int i = 0; i < kSpansPerThread; ++i) {
        obs::ScopedSpan span(&tracer, &ctx.clock, "op", "stress", "i",
                             static_cast<uint64_t>(i));
        ctx.clock.Advance(3);
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(tracer.SpanCount() + tracer.Drops(),
            static_cast<uint64_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(tracer.Drops(), 0u);  // 2000 < 4096 per-thread capacity.
  uint64_t seen = 0;
  tracer.ForEachSpan([&](const obs::SpanRecord& s) {
    EXPECT_GE(s.end_ns, s.start_ns);
    ++seen;
  });
  EXPECT_EQ(seen, tracer.SpanCount());
}

// --- MetricsRegistry ------------------------------------------------------------------

TEST(Metrics, CounterRegistrationIsIdempotent) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.RegisterCounter("x.count");
  obs::Counter* b = reg.RegisterCounter("x.count");
  EXPECT_EQ(a, b);
  a->Add(3);
  b->Add(4);
  auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "x.count");
  EXPECT_EQ(samples[0].value, 7u);
  EXPECT_TRUE(samples[0].is_counter);
}

TEST(Metrics, GaugeEvaluatedExactlyOncePerSnapshot) {
  obs::MetricsRegistry reg;
  std::atomic<uint64_t> evals{0};
  reg.RegisterGauge("g.depth", [&evals] {
    return evals.fetch_add(1, std::memory_order_relaxed) + 1;
  });
  for (int dump = 1; dump <= 5; ++dump) {
    auto samples = reg.Snapshot();
    ASSERT_EQ(samples.size(), 1u);
    // Exactly one evaluation per dump: the sample carries this dump's ordinal.
    EXPECT_EQ(samples[0].value, static_cast<uint64_t>(dump));
    EXPECT_EQ(evals.load(), static_cast<uint64_t>(dump));
  }
}

TEST(Metrics, DeregisterGaugesByPrefix) {
  obs::MetricsRegistry reg;
  reg.RegisterGauge("journal.depth", [] { return 1u; });
  reg.RegisterGauge("journal.commits", [] { return 2u; });
  reg.RegisterGauge("staging.spare", [] { return 3u; });
  EXPECT_EQ(reg.Snapshot().size(), 3u);
  reg.DeregisterGauges("journal.");
  auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].name, "staging.spare");
}

// The DumpMetrics race, directed: dumps race a writer mutating the gauge's source.
// Each snapshot must be one consistent cut — both gauges read the same atomic once,
// and since "twice" is registered to return 2 * source read-once, the pair inside one
// snapshot must satisfy twice == 2 * once (a re-read mid-dump would tear them).
// TSan (concurrency label) checks the synchronization; the assert checks atomicity
// of the cut.
TEST(Metrics, ConcurrentSnapshotsSeeConsistentCut) {
  obs::MetricsRegistry reg;
  std::atomic<uint64_t> source{0};
  // Both gauges read `source` exactly once per evaluation; the registry evaluates
  // each exactly once per dump under its lock, so within one dump the two samples
  // are derived from two acquire reads with no re-read during formatting.
  reg.RegisterGauge("a.once", [&source] {
    return source.load(std::memory_order_acquire);
  });
  reg.RegisterGauge("b.twice", [&source] {
    return 2 * source.load(std::memory_order_acquire);
  });
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      source.fetch_add(1, std::memory_order_release);
    }
  });
  constexpr int kDumpThreads = 4;
  constexpr int kDumpsPerThread = 500;
  std::vector<std::thread> dumpers;
  for (int t = 0; t < kDumpThreads; ++t) {
    dumpers.emplace_back([&reg] {
      for (int i = 0; i < kDumpsPerThread; ++i) {
        auto samples = reg.Snapshot();
        ASSERT_EQ(samples.size(), 2u);
        // Sorted by name: a.once then b.twice. The writer may advance the source
        // between the two gauge evaluations inside one dump, but never backwards —
        // and neither value is ever re-read after its single evaluation, so b is
        // always an even number derived from a source at least as new as a's.
        EXPECT_GE(samples[1].value, 2 * samples[0].value);
        EXPECT_EQ(samples[1].value % 2, 0u) << "gauge value torn mid-dump";
      }
    });
  }
  for (auto& d : dumpers) {
    d.join();
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

// --- ContentionLedger -----------------------------------------------------------------

TEST(Contention, LedgerAggregatesPerResource) {
  obs::ContentionLedger ledger;
  ledger.RecordWait("journal.tid_wait", 100);
  ledger.RecordWait("journal.tid_wait", 300);
  ledger.RecordWait("ext4.inode_lock", 50);
  ledger.RecordWait("ext4.inode_lock", 0);  // No-op: zero waits are not waits.
  auto snap = ledger.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "ext4.inode_lock");
  EXPECT_EQ(snap[0].second.waits, 1u);
  EXPECT_EQ(snap[0].second.waited_ns, 50u);
  EXPECT_EQ(snap[1].first, "journal.tid_wait");
  EXPECT_EQ(snap[1].second.waits, 2u);
  EXPECT_EQ(snap[1].second.waited_ns, 400u);
  EXPECT_EQ(snap[1].second.max_wait_ns, 300u);
  EXPECT_EQ(ledger.TotalWaitedNs(), 450u);
  ledger.Reset();
  EXPECT_TRUE(ledger.Snapshot().empty());
}

// ReportWait glues ledger + tracer: a contended acquisition lands in the ledger and,
// with the tracer recording, as a retroactive wait span ending now.
TEST(Contention, ReportWaitRecordsLedgerAndWaitSpan) {
  sim::Context ctx;
  ctx.obs.tracer.Enable();
  ctx.clock.Advance(1000);
  obs::ReportWait(&ctx.obs, &ctx.clock, "splitfs.range_lock", 250);
  obs::ReportWait(&ctx.obs, &ctx.clock, "splitfs.range_lock", 0);  // No-op.
  auto snap = ctx.obs.ledger.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].second.waited_ns, 250u);
  ASSERT_EQ(ctx.obs.tracer.SpanCount(), 1u);
  ctx.obs.tracer.ForEachSpan([](const obs::SpanRecord& s) {
    EXPECT_STREQ(s.category, "wait");
    EXPECT_STREQ(s.name, "splitfs.range_lock");
    EXPECT_EQ(s.start_ns, 750u);
    EXPECT_EQ(s.end_ns, 1000u);
  });
}

}  // namespace
