// Tests for the example applications (the paper's workload substitutes): the LSM KV
// store, the AOF store, and the WAL database — functional behaviour plus their
// recovery protocols, parameterized over ext4-DAX and SplitFS backends so the apps
// double as integration tests of the full stack.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/aof_store.h"
#include "src/apps/kv_lsm.h"
#include "src/apps/wal_db.h"
#include "src/common/bytes.h"
#include "src/core/split_fs.h"

namespace {

using common::kMiB;

struct Backend {
  const char* name;
  bool use_splitfs;
};

class AppsTest : public ::testing::TestWithParam<Backend> {
 protected:
  AppsTest() : dev_(&ctx_, 768 * kMiB), kfs_(&dev_) {
    if (GetParam().use_splitfs) {
      splitfs::Options o;
      o.mode = splitfs::Mode::kStrict;
      o.num_staging_files = 2;
      o.staging_file_bytes = 8 * kMiB;
      o.oplog_bytes = 2 * kMiB;
      split_ = std::make_unique<splitfs::SplitFs>(&kfs_, o);
      fs_ = split_.get();
    } else {
      fs_ = &kfs_;
    }
  }

  sim::Context ctx_;
  pmem::Device dev_;
  ext4sim::Ext4Dax kfs_;
  std::unique_ptr<splitfs::SplitFs> split_;
  vfs::FileSystem* fs_ = nullptr;
};

INSTANTIATE_TEST_SUITE_P(Backends, AppsTest,
                         ::testing::Values(Backend{"ext4", false},
                                           Backend{"SplitFS", true}),
                         [](const auto& info) { return info.param.name; });

TEST_P(AppsTest, KvPutGetDelete) {
  apps::KvLsm kv(fs_, "/db");
  EXPECT_EQ(kv.Put("alpha", "1"), 0);
  EXPECT_EQ(kv.Put("beta", "2"), 0);
  EXPECT_EQ(kv.Get("alpha").value_or(""), "1");
  EXPECT_EQ(kv.Put("alpha", "1b"), 0);
  EXPECT_EQ(kv.Get("alpha").value_or(""), "1b");
  EXPECT_EQ(kv.Delete("beta"), 0);
  EXPECT_FALSE(kv.Get("beta").has_value());
  EXPECT_FALSE(kv.Get("gamma").has_value());
}

TEST_P(AppsTest, KvFlushAndLookupFromTables) {
  apps::KvLsmOptions o;
  o.memtable_bytes = 32 * 1024;  // Force frequent flushes.
  apps::KvLsm kv(fs_, "/db", o);
  for (int i = 0; i < 500; ++i) {
    std::string k = "key" + std::to_string(i);
    ASSERT_EQ(kv.Put(k, "value-" + std::to_string(i) + std::string(100, 'x')), 0);
  }
  EXPECT_GT(kv.Flushes(), 0u);
  for (int i = 0; i < 500; i += 37) {
    std::string k = "key" + std::to_string(i);
    auto v = kv.Get(k);
    ASSERT_TRUE(v.has_value()) << k;
    EXPECT_EQ(v->substr(0, 6 + std::to_string(i).size()),
              "value-" + std::to_string(i));
  }
}

TEST_P(AppsTest, KvCompactionPreservesNewestVersions) {
  apps::KvLsmOptions o;
  o.memtable_bytes = 16 * 1024;
  o.l0_compaction_trigger = 3;
  apps::KvLsm kv(fs_, "/db", o);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(kv.Put("k" + std::to_string(i),
                       "r" + std::to_string(round) + "-" + std::string(200, 'y')),
                0);
    }
  }
  EXPECT_GT(kv.Compactions(), 0u);
  for (int i = 0; i < 100; ++i) {
    auto v = kv.Get("k" + std::to_string(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->substr(0, 2), "r5");  // Newest round wins.
  }
}

TEST_P(AppsTest, KvScanMergesAllSources) {
  apps::KvLsmOptions o;
  o.memtable_bytes = 8 * 1024;
  apps::KvLsm kv(fs_, "/db", o);
  for (int i = 0; i < 200; ++i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "k%04d", i);
    ASSERT_EQ(kv.Put(buf, std::string(100, 'z')), 0);
  }
  kv.Delete("k0010");
  auto rows = kv.Scan("k0005", 10);
  ASSERT_EQ(rows.size(), 10u);
  EXPECT_EQ(rows[0].first, "k0005");
  for (const auto& [k, v] : rows) {
    EXPECT_NE(k, "k0010");  // Tombstone respected across tables + memtable.
  }
}

TEST_P(AppsTest, KvRecoversFromWalAfterReopen) {
  {
    apps::KvLsm kv(fs_, "/db");
    ASSERT_EQ(kv.Put("persist-me", "important"), 0);
    ASSERT_EQ(kv.Put("and-me", "too"), 0);
  }  // Destructor closes; WAL survives with the data.
  apps::KvLsm kv2(fs_, "/db");
  EXPECT_EQ(kv2.Get("persist-me").value_or(""), "important");
  EXPECT_EQ(kv2.Get("and-me").value_or(""), "too");
}

TEST_P(AppsTest, KvRecoversTablesAfterReopen) {
  {
    apps::KvLsmOptions o;
    o.memtable_bytes = 16 * 1024;
    apps::KvLsm kv(fs_, "/db", o);
    for (int i = 0; i < 300; ++i) {
      ASSERT_EQ(kv.Put("t" + std::to_string(i), std::string(150, 'q')), 0);
    }
    EXPECT_GT(kv.Flushes(), 0u);
  }
  apps::KvLsm kv2(fs_, "/db");
  for (int i = 0; i < 300; i += 23) {
    EXPECT_TRUE(kv2.Get("t" + std::to_string(i)).has_value()) << i;
  }
}

TEST_P(AppsTest, AofSetGetReplayAndRewrite) {
  {
    apps::AofStore redis(fs_, "/redis");
    for (int i = 0; i < 100; ++i) {
      ASSERT_EQ(redis.Set("key" + std::to_string(i), "v" + std::to_string(i)), 0);
    }
    ASSERT_EQ(redis.Del("key50"), 0);
  }
  apps::AofStore redis2(fs_, "/redis");
  EXPECT_EQ(redis2.Size(), 99u);
  EXPECT_EQ(redis2.Get("key7").value_or(""), "v7");
  EXPECT_FALSE(redis2.Get("key50").has_value());
}

TEST_P(AppsTest, AofRewriteCompactsLog) {
  apps::AofOptions o;
  o.rewrite_growth = 1.5;
  apps::AofStore redis(fs_, "/redis", o);
  // Overwrite the same keys many times: the AOF grows, a rewrite compacts it.
  std::string big(4096, 'B');
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 20; ++i) {
      ASSERT_EQ(redis.Set("hot" + std::to_string(i), big), 0);
    }
  }
  EXPECT_GT(redis.Rewrites(), 0u);
  EXPECT_EQ(redis.Size(), 20u);
  EXPECT_EQ(redis.Get("hot3").value_or(""), big);
}

TEST_P(AppsTest, WalDbCommitAndReadBack) {
  apps::WalDb db(fs_, "/db.sqlite");
  std::vector<uint8_t> page(4096, 0x11);
  db.Begin();
  ASSERT_EQ(db.WritePage(3, page.data()), 0);
  ASSERT_EQ(db.Commit(), 0);
  std::vector<uint8_t> back(4096);
  ASSERT_EQ(db.ReadPage(3, back.data()), 0);
  EXPECT_EQ(back, page);
  // Unwritten pages read as zeroes.
  ASSERT_EQ(db.ReadPage(9, back.data()), 0);
  EXPECT_EQ(back, std::vector<uint8_t>(4096, 0));
}

TEST_P(AppsTest, WalDbRollbackDiscards) {
  apps::WalDb db(fs_, "/db.sqlite");
  std::vector<uint8_t> a(4096, 0xAA), b(4096, 0xBB);
  db.Begin();
  db.WritePage(1, a.data());
  ASSERT_EQ(db.Commit(), 0);
  db.Begin();
  db.WritePage(1, b.data());
  std::vector<uint8_t> back(4096);
  db.ReadPage(1, back.data());
  EXPECT_EQ(back, b);  // Transaction sees its own writes.
  db.Rollback();
  db.ReadPage(1, back.data());
  EXPECT_EQ(back, a);  // Rolled back.
}

TEST_P(AppsTest, WalDbCheckpointMovesPagesToMainFile) {
  apps::WalDbOptions o;
  o.checkpoint_frames = 8;
  apps::WalDb db(fs_, "/db.sqlite", o);
  std::vector<uint8_t> page(4096);
  for (uint64_t p = 0; p < 20; ++p) {
    page.assign(4096, static_cast<uint8_t>(p));
    db.Begin();
    db.WritePage(p, page.data());
    ASSERT_EQ(db.Commit(), 0);
  }
  EXPECT_GT(db.Checkpoints(), 0u);
  for (uint64_t p = 0; p < 20; ++p) {
    std::vector<uint8_t> back(4096);
    db.ReadPage(p, back.data());
    EXPECT_EQ(back[0], static_cast<uint8_t>(p));
  }
}

TEST_P(AppsTest, WalDbRecoversWalIndexOnReopen) {
  {
    apps::WalDbOptions o;
    o.checkpoint_frames = 1000000;  // Never checkpoint: data stays in the WAL.
    apps::WalDb db(fs_, "/db.sqlite", o);
    std::vector<uint8_t> page(4096, 0x77);
    db.Begin();
    db.WritePage(5, page.data());
    ASSERT_EQ(db.Commit(), 0);
    // Destructor checkpoints; to test WAL-index recovery we reopen BEFORE that by
    // simulating what a crashed process leaves: commit happened, nothing else.
    // (The destructor checkpoint also exercises the checkpoint path.)
  }
  apps::WalDb db2(fs_, "/db.sqlite");
  std::vector<uint8_t> back(4096);
  db2.ReadPage(5, back.data());
  EXPECT_EQ(back, std::vector<uint8_t>(4096, 0x77));
}

}  // namespace
